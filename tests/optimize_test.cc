// Unit and property tests for src/optimize: Levenberg-Marquardt,
// Nelder-Mead and the 1-d searches.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"
#include "optimize/levenberg_marquardt.h"
#include "optimize/line_search.h"
#include "optimize/nelder_mead.h"

namespace dspot {
namespace {

Status RosenbrockResiduals(const std::vector<double>& p,
                           std::vector<double>* r) {
  r->assign({10.0 * (p[1] - p[0] * p[0]), 1.0 - p[0]});
  return Status::Ok();
}

TEST(LevenbergMarquardt, SolvesRosenbrock) {
  auto result = LevenbergMarquardt(RosenbrockResiduals, {-1.2, 1.0});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->params[0], 1.0, 1e-4);
  EXPECT_NEAR(result->params[1], 1.0, 1e-4);
  EXPECT_LT(result->final_cost, 1e-8);
  EXPECT_LT(result->final_cost, result->initial_cost);
}

TEST(LevenbergMarquardt, LinearLeastSquaresExact) {
  // r(p) = A p - b with A = diag(1, 2), b = (3, 8): minimum at (3, 4).
  auto residual = [](const std::vector<double>& p,
                     std::vector<double>* r) -> Status {
    r->assign({p[0] - 3.0, 2.0 * p[1] - 8.0});
    return Status::Ok();
  };
  auto result = LevenbergMarquardt(residual, {0.0, 0.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->params[0], 3.0, 1e-6);
  EXPECT_NEAR(result->params[1], 4.0, 1e-6);
}

TEST(LevenbergMarquardt, RespectsBounds) {
  // Unconstrained optimum at 3, but the box caps it at 2.
  auto residual = [](const std::vector<double>& p,
                     std::vector<double>* r) -> Status {
    r->assign({p[0] - 3.0});
    return Status::Ok();
  };
  Bounds bounds;
  bounds.lower = {0.0};
  bounds.upper = {2.0};
  auto result = LevenbergMarquardt(residual, {1.0}, bounds);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->params[0], 2.0, 1e-6);
}

TEST(LevenbergMarquardt, ClampsInitialOutsideBounds) {
  auto residual = [](const std::vector<double>& p,
                     std::vector<double>* r) -> Status {
    r->assign({p[0]});
    return Status::Ok();
  };
  Bounds bounds;
  bounds.lower = {1.0};
  bounds.upper = {5.0};
  auto result = LevenbergMarquardt(residual, {100.0}, bounds);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->params[0], 1.0);
  EXPECT_LE(result->params[0], 5.0);
}

TEST(LevenbergMarquardt, RejectsEmptyParams) {
  EXPECT_FALSE(LevenbergMarquardt(RosenbrockResiduals, {}).ok());
}

TEST(LevenbergMarquardt, RejectsBoundsSizeMismatch) {
  Bounds bounds;
  bounds.lower = {0.0};
  bounds.upper = {1.0};
  EXPECT_EQ(
      LevenbergMarquardt(RosenbrockResiduals, {0.0, 0.0}, bounds).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(LevenbergMarquardt, PropagatesResidualError) {
  auto residual = [](const std::vector<double>&, std::vector<double>* r) {
    r->assign({0.0});
    return Status::Internal("boom");
  };
  auto result = LevenbergMarquardt(residual, {1.0});
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(LevenbergMarquardt, NeverIncreasesCost) {
  // Even on a nasty multimodal residual, the accepted iterate sequence is
  // monotone by construction: final <= initial.
  auto residual = [](const std::vector<double>& p,
                     std::vector<double>* r) -> Status {
    r->assign({std::sin(5.0 * p[0]) + 0.1 * p[0] * p[0]});
    return Status::Ok();
  };
  for (double start : {-3.0, -1.0, 0.4, 2.7}) {
    auto result = LevenbergMarquardt(residual, {start});
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->final_cost, result->initial_cost + 1e-15);
  }
}

/// Property sweep: LM recovers the parameters of an exponential-decay model
/// from exact data, across a range of true parameter values.
class LmExponentialRecovery
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LmExponentialRecovery, RecoversParameters) {
  const auto [a_true, k_true] = GetParam();
  std::vector<double> ts;
  for (int t = 0; t < 30; ++t) ts.push_back(0.2 * t);
  auto residual = [&](const std::vector<double>& p,
                      std::vector<double>* r) -> Status {
    r->clear();
    for (double t : ts) {
      r->push_back(p[0] * std::exp(-p[1] * t) -
                   a_true * std::exp(-k_true * t));
    }
    return Status::Ok();
  };
  Bounds bounds;
  bounds.lower = {0.01, 0.01};
  bounds.upper = {100.0, 10.0};
  auto result = LevenbergMarquardt(residual, {1.0, 1.0}, bounds);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->params[0], a_true, 1e-3 * a_true);
  EXPECT_NEAR(result->params[1], k_true, 1e-3 * std::max(k_true, 0.1));
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, LmExponentialRecovery,
    ::testing::Combine(::testing::Values(0.5, 2.0, 10.0),
                       ::testing::Values(0.1, 0.7, 2.5)));

TEST(NelderMead, MinimizesQuadratic) {
  auto fn = [](const std::vector<double>& p) {
    return (p[0] - 1.0) * (p[0] - 1.0) + 2.0 * (p[1] + 2.0) * (p[1] + 2.0);
  };
  auto result = NelderMead(fn, {5.0, 5.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->params[0], 1.0, 1e-3);
  EXPECT_NEAR(result->params[1], -2.0, 1e-3);
}

TEST(NelderMead, MinimizesRosenbrockScalar) {
  auto fn = [](const std::vector<double>& p) {
    return 100.0 * std::pow(p[1] - p[0] * p[0], 2) + std::pow(1.0 - p[0], 2);
  };
  NelderMeadOptions options;
  options.max_evaluations = 8000;
  auto result = NelderMead(fn, {-1.2, 1.0}, Bounds(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->params[0], 1.0, 5e-2);
  EXPECT_NEAR(result->params[1], 1.0, 1e-1);
}

TEST(NelderMead, HonorsBounds) {
  auto fn = [](const std::vector<double>& p) { return p[0]; };
  Bounds bounds;
  bounds.lower = {-1.0};
  bounds.upper = {1.0};
  auto result = NelderMead(fn, {0.5}, bounds);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->params[0], -1.0 - 1e-12);
}

TEST(NelderMead, SurvivesInfiniteRegions) {
  // +inf outside the unit disk; minimum at origin.
  auto fn = [](const std::vector<double>& p) {
    const double r2 = p[0] * p[0] + p[1] * p[1];
    if (r2 > 1.0) return std::numeric_limits<double>::infinity();
    return r2;
  };
  auto result = NelderMead(fn, {0.5, 0.5});
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->final_value, 0.05);
}

TEST(NelderMead, RejectsEmpty) {
  EXPECT_FALSE(NelderMead([](const std::vector<double>&) { return 0.0; }, {})
                   .ok());
}

TEST(LineSearch, GoldenSectionFindsParabolaMin) {
  auto fn = [](double x) { return (x - 1.7) * (x - 1.7); };
  EXPECT_NEAR(GoldenSectionMinimize(fn, -10.0, 10.0, 1e-10), 1.7, 1e-6);
}

TEST(LineSearch, GoldenSectionSwapsBounds) {
  auto fn = [](double x) { return (x - 1.7) * (x - 1.7); };
  EXPECT_NEAR(GoldenSectionMinimize(fn, 10.0, -10.0, 1e-10), 1.7, 1e-6);
}

TEST(LineSearch, GridMinimizeHitsBestCell) {
  auto fn = [](double x) { return std::fabs(x - 3.0); };
  EXPECT_NEAR(GridMinimize(fn, 0.0, 10.0, 10), 3.0, 1e-12);
}

TEST(LineSearch, GridMinimizeDegenerate) {
  auto fn = [](double x) { return x; };
  EXPECT_DOUBLE_EQ(GridMinimize(fn, 5.0, 5.0, 10), 5.0);
  EXPECT_DOUBLE_EQ(GridMinimize(fn, 0.0, 1.0, 0), 0.0);
}

TEST(LineSearch, GridThenGoldenOnMultimodal) {
  // Two minima; the global one (at ~7.0) is found thanks to the grid scan.
  auto fn = [](double x) {
    return std::min((x - 2.0) * (x - 2.0) + 1.0, (x - 7.0) * (x - 7.0));
  };
  EXPECT_NEAR(GridThenGoldenMinimize(fn, 0.0, 10.0, 50), 7.0, 1e-4);
}

TEST(LineSearch, GuardedMinimizeNeverWorsens) {
  // Pathological oscillation: whatever the search returns, the guarded
  // version must not be worse than the incumbent.
  auto fn = [](double x) { return std::sin(40.0 * x) + 0.01 * x; };
  const double current = 0.275;  // some incumbent
  const double result = GuardedMinimize(fn, 0.0, 10.0, current);
  EXPECT_LE(fn(result), fn(current) + 1e-12);
}

TEST(LineSearch, GuardedMinimizeImprovesUnimodal) {
  auto fn = [](double x) { return (x - 4.0) * (x - 4.0); };
  const double result = GuardedMinimize(fn, 0.0, 10.0, 9.0);
  EXPECT_NEAR(result, 4.0, 1e-3);
}

TEST(LineSearch, GoldenSectionCollapsedBracketReturnsBestEndpoint) {
  // Bracket narrower than the tolerance at entry: nothing to section, the
  // better endpoint must come back (pre-fix, an interior probe of the
  // degenerate interval did).
  auto fn = [](double x) { return x; };  // decreasing preference for lo
  const double x = GoldenSectionMinimize(fn, 1.0, 1.0 + 1e-8, /*tol=*/1e-4);
  EXPECT_DOUBLE_EQ(x, 1.0);
  // Same with the endpoints reversed and the minimum at the upper end.
  auto neg = [](double v) { return -v; };
  const double y = GoldenSectionMinimize(neg, 2.0 + 1e-8, 2.0, /*tol=*/1e-4);
  EXPECT_DOUBLE_EQ(y, 2.0 + 1e-8);
}

TEST(LineSearch, GoldenSectionEqualEndpointCosts) {
  // Perfectly flat objective: any point in the bracket is optimal, but the
  // result must be a finite in-bracket point, never NaN.
  auto fn = [](double) { return 3.0; };
  const double x = GoldenSectionMinimize(fn, -1.0, 1.0, 1e-6);
  EXPECT_TRUE(std::isfinite(x));
  EXPECT_GE(x, -1.0);
  EXPECT_LE(x, 1.0);
}

TEST(LineSearch, GoldenSectionNanRegionsLoseToFinite) {
  // The objective is NaN on the right half; the section step must never
  // adopt a NaN probe as the incumbent. Minimum of the finite part is at 2.
  auto fn = [](double x) {
    if (x > 5.0) return std::numeric_limits<double>::quiet_NaN();
    return (x - 2.0) * (x - 2.0);
  };
  const double x = GoldenSectionMinimize(fn, 0.0, 10.0, 1e-8);
  EXPECT_TRUE(std::isfinite(fn(x))) << x;
  EXPECT_NEAR(x, 2.0, 1e-2);
}

TEST(LineSearch, GuardedMinimizeEscapesNanIncumbent) {
  // A NaN incumbent loses every `<` comparison; pre-fix GuardedMinimize
  // therefore returned it unchanged. It must take any finite candidate.
  auto fn = [](double x) {
    if (x > 8.0) return std::numeric_limits<double>::quiet_NaN();
    return (x - 3.0) * (x - 3.0);
  };
  const double result = GuardedMinimize(fn, 0.0, 8.0, /*current=*/9.0);
  EXPECT_TRUE(std::isfinite(fn(result)));
  EXPECT_NEAR(result, 3.0, 1e-2);
}

TEST(LineSearch, GoldenSectionPropertyNeverAboveEndpoints) {
  // Property sweep: for unimodal quadratics with random vertex and random
  // (possibly tiny) brackets, the returned point is inside the bracket and
  // codes no worse than both endpoints.
  Random rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const double vertex = rng.Uniform(-5.0, 5.0);
    const double lo = rng.Uniform(-6.0, 6.0);
    const double width = rng.Uniform(0.0, trial % 4 == 0 ? 1e-6 : 4.0);
    const double hi = lo + width;
    auto fn = [vertex](double x) { return (x - vertex) * (x - vertex); };
    const double x = GoldenSectionMinimize(fn, lo, hi, 1e-5);
    EXPECT_GE(x, lo - 1e-12);
    EXPECT_LE(x, hi + 1e-12);
    EXPECT_LE(fn(x), std::max(fn(lo), fn(hi)) + 1e-12);
  }
}

}  // namespace
}  // namespace dspot
