// Fig. 1 reproduction: (a) Δ-SPOT automatically detects the cyclic and
// non-cyclic external events of the "Harry Potter" search sequence
// (biennial July releases, November premieres, one May spike) and fits
// 11 years of weekly data; (b) the per-country reaction to the events —
// the "world-wide reaction map" — as the fitted local strengths.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

int Run() {
  std::printf("=== Fig. 1 — modeling power of Δ-SPOT on 'Harry Potter' ===\n\n");
  GeneratorConfig config = GoogleTrendsConfig();
  auto generated = GenerateTensor({HarryPotterScenario()}, config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  auto result = FitDspot(generated->tensor);
  if (!result.ok()) {
    std::fprintf(stderr, "fit: %s\n", result.status().ToString().c_str());
    return 1;
  }

  const Series data = generated->tensor.GlobalSequence(0);
  std::printf("(a) global fit, %zu weekly ticks (2004-2015), RMSE %.3f "
              "(range %.1f)\n\n",
              data.size(), result->global_rmse[0],
              data.MaxValue() - data.MinValue());
  bench::PrintFitPair("harry_potter", data, result->global_estimates[0]);

  std::printf("\nDetected external events:\n");
  std::printf("Ground truth: biennial releases from %s, premieres from %s, "
              "one-shot %s\n",
              bench::WeekToCalendar(80).c_str(),
              bench::WeekToCalendar(98).c_str(),
              bench::WeekToCalendar(71).c_str());
  for (const Shock& shock : result->params.shocks) {
    std::printf("  * %s\n", bench::DescribeEvent(shock).c_str());
  }

  // (b) world-wide reaction: average fitted local strength per country.
  std::printf("\n(b) world-wide reaction to the events (fitted local "
              "strengths):\n");
  struct Row {
    std::string name;
    double strength;
    bool outlier;
  };
  std::vector<Row> rows;
  const size_t l = generated->tensor.num_locations();
  for (size_t j = 0; j < l; ++j) {
    double sum = 0.0;
    size_t count = 0;
    for (const Shock& shock : result->params.shocks) {
      for (size_t m = 0; m < shock.local_strengths.rows(); ++m) {
        sum += shock.local_strengths(m, j);
        ++count;
      }
    }
    rows.push_back({generated->tensor.locations()[j],
                    count == 0 ? 0.0 : sum / static_cast<double>(count),
                    generated->truth.is_outlier[j]});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.strength > b.strength; });
  std::printf("%-6s %-12s %s\n", "ctry", "reaction", "(bar)");
  const double max_strength = std::max(rows.front().strength, 1e-9);
  for (const Row& row : rows) {
    const int bar = static_cast<int>(40.0 * row.strength / max_strength);
    std::printf("%-6s %10.3f   %s%s\n", row.name.c_str(), row.strength,
                std::string(static_cast<size_t>(std::max(bar, 0)), '#').c_str(),
                row.outlier ? "   <- low-connectivity outlier" : "");
  }
  std::printf("\nExpected shape: high-population countries react strongly; "
              "the trailing outliers show ~zero reaction.\n");
  return 0;
}

}  // namespace
}  // namespace dspot

int main() { return dspot::Run(); }
