#ifndef DSPOT_EPIDEMICS_SKIPS_H_
#define DSPOT_EPIDEMICS_SKIPS_H_

#include <cstddef>
#include <span>

#include "common/statusor.h"
#include "timeseries/series.h"

namespace dspot {

/// SKIPS-style seasonally forced SIRS (after Stone, Olinky & Huppert,
/// "Seasonal dynamics of recurrent epidemics", Nature 2007; cited by the
/// paper as [19]). The transmission rate is sinusoidally modulated:
///
///   beta(t) = beta0 * (1 + amplitude * sin(2*pi*t/period + phase))
///
/// which lets the model express periodic waves, but — unlike Δ-SPOT — only
/// as a smooth seasonal forcing, not as sharp, independently sized shocks.
struct SkipsParams {
  double population = 1.0;
  double beta0 = 0.3;      ///< mean per-capita transmission rate
  double delta = 0.1;      ///< recovery rate
  double gamma = 0.05;     ///< immunity-loss rate
  double amplitude = 0.2;  ///< seasonal forcing strength, in [0, 1]
  double period = 52.0;    ///< forcing period in ticks
  double phase = 0.0;      ///< forcing phase in radians
  double i0 = 1.0;
};

/// Simulates the forced SIRS for `n_ticks` steps; returns I(t).
Series SimulateSkips(const SkipsParams& params, size_t n_ticks);

/// In-place form over a horizon of `out.size()` ticks; the Series overload
/// delegates here. Keeps the FitSkips residual loop allocation-free.
void SimulateSkipsInto(const SkipsParams& params, std::span<double> out);

struct SkipsFit {
  SkipsParams params;
  double rmse = 0.0;
};

/// Fits SKIPS to `data`: the forcing period is chosen among ACF-derived
/// candidates (plus a default grid) and the remaining parameters are fit
/// with multi-start LM for each candidate; the best overall wins.
StatusOr<SkipsFit> FitSkips(const Series& data);

}  // namespace dspot

#endif  // DSPOT_EPIDEMICS_SKIPS_H_
