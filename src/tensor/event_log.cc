#include "tensor/event_log.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "kernels/calendar.h"

namespace dspot {

namespace {

/// Calendar bucket index of a Unix-seconds timestamp (branch-free kernel
/// arithmetic; correct for pre-epoch/negative timestamps). kNone is never
/// passed here.
int64_t CalendarBucket(int64_t unix_seconds, CalendarUnit unit) {
  const int64_t days = kernels::DaysFromSeconds(unix_seconds);
  switch (unit) {
    case CalendarUnit::kDay:
      return days;
    case CalendarUnit::kWeek:
      return kernels::WeekIndexFromDays(days);
    case CalendarUnit::kMonth:
      return kernels::MonthIndexFromDays(days);
    case CalendarUnit::kYear:
      return kernels::YearFromDays(days);
    case CalendarUnit::kNone:
      break;
  }
  return 0;
}

}  // namespace

size_t EventAggregator::InternKeyword(const std::string& name) {
  for (size_t i = 0; i < keywords_.size(); ++i) {
    if (keywords_[i] == name) return i;
  }
  keywords_.push_back(name);
  return keywords_.size() - 1;
}

size_t EventAggregator::InternLocation(const std::string& name) {
  for (size_t j = 0; j < locations_.size(); ++j) {
    if (locations_[j] == name) return j;
  }
  locations_.push_back(name);
  return locations_.size() - 1;
}

Status EventAggregator::Add(const EventRecord& record) {
  if (config_.ticks_resolution <= 0) {
    return Status::InvalidArgument("EventAggregator: non-positive resolution");
  }
  if (record.timestamp < config_.origin) {
    return Status::InvalidArgument(
        "EventAggregator: record timestamp precedes the origin");
  }
  if (record.keyword.empty() || record.location.empty()) {
    return Status::InvalidArgument("EventAggregator: empty keyword/location");
  }
  int64_t tick_index;
  if (config_.calendar_unit == CalendarUnit::kNone) {
    // timestamp >= origin is enforced above, so the difference is
    // non-negative and FloorDiv agrees with the historical truncating
    // division bit-for-bit; floor semantics document the intent (and keep
    // this path correct if the rejection rule ever loosens).
    tick_index = kernels::FloorDiv(record.timestamp - config_.origin,
                                   config_.ticks_resolution);
  } else {
    // Calendar mode: tick = bucket(timestamp) - bucket(origin). Both sides
    // use floor-aligned bucketing, so pre-epoch origins and timestamps
    // (negative Unix seconds) index correctly — e.g. with a kDay unit and
    // origin 0, second -1 would be day -1, not day 0; the monotone bucket
    // functions plus the timestamp >= origin check keep tick >= 0.
    tick_index = CalendarBucket(record.timestamp, config_.calendar_unit) -
                 CalendarBucket(config_.origin, config_.calendar_unit);
  }
  const size_t tick = static_cast<size_t>(tick_index);
  if (config_.max_ticks > 0 && tick >= config_.max_ticks) {
    ++dropped_;
    return Status::Ok();
  }
  Cell cell;
  cell.keyword = InternKeyword(record.keyword);
  cell.location = InternLocation(record.location);
  cell.tick = tick;
  cells_.emplace_back(cell, record.count);
  max_tick_ = std::max(max_tick_, tick);
  ++accepted_;
  return Status::Ok();
}

StatusOr<ActivityTensor> EventAggregator::Build() const {
  if (cells_.empty()) {
    return Status::FailedPrecondition("EventAggregator: no records accepted");
  }
  ActivityTensor tensor(keywords_.size(), locations_.size(), max_tick_ + 1);
  for (size_t i = 0; i < keywords_.size(); ++i) {
    DSPOT_RETURN_IF_ERROR(tensor.SetKeywordName(i, keywords_[i]));
  }
  for (size_t j = 0; j < locations_.size(); ++j) {
    DSPOT_RETURN_IF_ERROR(tensor.SetLocationName(j, locations_[j]));
  }
  for (const auto& [cell, count] : cells_) {
    tensor.at(cell.keyword, cell.location, cell.tick) += count;
  }
  return tensor;
}

StatusOr<ActivityTensor> AggregateEvents(
    const std::vector<EventRecord>& records,
    const AggregationConfig& config) {
  EventAggregator aggregator(config);
  for (const EventRecord& record : records) {
    DSPOT_RETURN_IF_ERROR(aggregator.Add(record));
  }
  return aggregator.Build();
}

namespace {

/// True iff `end` points at nothing but trailing whitespace (a field like
/// "12abc" is rejected, not coerced to 12).
bool FullyConsumed(const char* end) {
  while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
  return *end == '\0';
}

/// "<path>:<line>: column <column>: <what>"; columns are 1-based.
Status RowError(const std::string& path, size_t line_no, size_t column,
                const std::string& what) {
  return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                 ": column " + std::to_string(column) + ": " +
                                 what);
}

}  // namespace

Status ForEachEventCsv(
    const std::string& path, const CsvReadOptions& read_options,
    const std::function<Status(const EventRecord&)>& fn) {
  size_t skipped = 0;
  if (read_options.skipped_rows) *read_options.skipped_rows = 0;
  std::ifstream is(path);
  if (!is) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string line;
  if (!std::getline(is, line)) {
    return Status::IoError("empty file: " + path);
  }
  size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    // One shot per row: record the first defect, then either fail with it
    // (strict) or skip the row and count it (lenient).
    Status row_status = Status::Ok();
    std::istringstream fields(line);
    EventRecord record;
    std::string timestamp;
    std::string count;
    if (!std::getline(fields, record.keyword, ',') ||
        !std::getline(fields, record.location, ',') ||
        !std::getline(fields, timestamp, ',')) {
      row_status = RowError(path, line_no, 1,
                            "expected keyword,location,timestamp[,count]");
    }
    if (row_status.ok()) {
      char* end = nullptr;
      record.timestamp = std::strtoll(timestamp.c_str(), &end, 10);
      if (end == timestamp.c_str() || !FullyConsumed(end)) {
        row_status = RowError(path, line_no, 3,
                              "unparseable timestamp '" + timestamp + "'");
      } else if (std::getline(fields, count, ',')) {
        record.count = std::strtod(count.c_str(), &end);
        if (end == count.c_str() || !FullyConsumed(end)) {
          row_status =
              RowError(path, line_no, 4, "unparseable count '" + count + "'");
        }
      }
    }
    if (row_status.ok()) {
      // The consumer's own rejections (pre-origin timestamps, empty
      // labels, out-of-order arrivals) are data defects too, and get the
      // same row context.
      Status fn_status = fn(record);
      if (!fn_status.ok()) {
        row_status = RowError(path, line_no, 1, fn_status.message());
      }
    }
    if (!row_status.ok()) {
      if (read_options.skip_bad_rows) {
        ++skipped;
        continue;
      }
      return row_status;
    }
  }
  if (read_options.skipped_rows) *read_options.skipped_rows = skipped;
  return Status::Ok();
}

StatusOr<ActivityTensor> LoadAndAggregateEventsCsv(
    const std::string& path, const AggregationConfig& config,
    const CsvReadOptions& read_options) {
  EventAggregator aggregator(config);
  DSPOT_RETURN_IF_ERROR(ForEachEventCsv(
      path, read_options,
      [&aggregator](const EventRecord& r) { return aggregator.Add(r); }));
  return aggregator.Build();
}

}  // namespace dspot
