// Ablation D3: multi-layer optimization (GLOBALFIT then LOCALFIT with
// shared dynamics/shock times) vs fitting every local sequence as an
// independent Δ-SPOT instance. Sharing is both cheaper (O(l) local scalars
// per keyword instead of O(l) full models) and statistically stronger on
// small/noisy local sequences.

#include <chrono>
#include <cstdio>

#include "core/dspot.h"
#include "core/global_fit.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

int Run() {
  std::printf("=== Ablation D3 — multi-layer vs independent local fits ===\n\n");
  GeneratorConfig config = GoogleTrendsConfig();
  config.num_locations = 8;
  config.num_outlier_locations = 2;
  auto generated = GenerateTensor({GrammyScenario()}, config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const ActivityTensor& tensor = generated->tensor;
  const size_t l = tensor.num_locations();

  // Variant A: the real pipeline.
  const auto t0 = std::chrono::steady_clock::now();
  auto multi = FitDspot(tensor);
  const auto t1 = std::chrono::steady_clock::now();
  if (!multi.ok()) {
    std::fprintf(stderr, "multi-layer fit failed\n");
    return 1;
  }
  double multi_rmse = 0.0;
  for (size_t j = 0; j < l; ++j) {
    multi_rmse += Rmse(tensor.LocalSequence(0, j), multi->LocalEstimate(0, j));
  }
  multi_rmse /= static_cast<double>(l);

  // Variant B: every local sequence fit as its own full model.
  const auto t2 = std::chrono::steady_clock::now();
  double indep_rmse = 0.0;
  size_t indep_params = 0;
  for (size_t j = 0; j < l; ++j) {
    const Series local = tensor.LocalSequence(0, j);
    auto fit = FitGlobalSequence(local, 0, 1);
    if (!fit.ok()) continue;
    indep_rmse += fit->rmse;
    indep_params += 5 + (fit->params.has_growth() ? 2 : 0);
    for (const Shock& s : fit->shocks) {
      indep_params += 4 + s.global_strengths.size();
    }
  }
  const auto t3 = std::chrono::steady_clock::now();
  indep_rmse /= static_cast<double>(l);

  // Multi-layer parameter count: one global model + 2 scalars per
  // location + local strength matrices.
  size_t multi_params = 5 + (multi->params.global[0].has_growth() ? 2 : 0) +
                        2 * l;
  for (const Shock& s : multi->params.shocks) {
    multi_params += 4 + s.global_strengths.size();
    for (size_t m = 0; m < s.local_strengths.rows(); ++m) {
      for (size_t c = 0; c < s.local_strengths.cols(); ++c) {
        if (s.local_strengths(m, c) != 0.0) ++multi_params;
      }
    }
  }

  const double secs_multi = std::chrono::duration<double>(t1 - t0).count();
  const double secs_indep = std::chrono::duration<double>(t3 - t2).count();
  std::printf("%-28s %12s %10s %10s\n", "variant", "local RMSE", "params",
              "seconds");
  std::printf("%-28s %12.3f %10zu %10.2f\n", "multi-layer (Δ-SPOT)",
              multi_rmse, multi_params, secs_multi);
  std::printf("%-28s %12.3f %10zu %10.2f\n", "independent per-location",
              indep_rmse, indep_params, secs_indep);
  std::printf("\nExpected shape: comparable (or better) local RMSE for the "
              "multi-layer fit at a fraction of the parameters, and shock "
              "times that stay aligned across countries.\n");
  return 0;
}

}  // namespace
}  // namespace dspot

int main() { return dspot::Run(); }
