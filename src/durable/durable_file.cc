#include "durable/durable_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "guard/fault_injector.h"
#include "obs/metrics.h"

namespace dspot {

namespace {

DurableCrashHook g_crash_hook = nullptr;

Status ErrnoError(const std::string& what, const std::string& path, int err) {
  return Status::IoError(what + " failed: " + path + ": " +
                         std::strerror(err));
}

/// Sleeps before retry `attempt` (1-based): backoff_us << (attempt - 1),
/// capped so an injected failure storm cannot stall a test for seconds.
void Backoff(const RetryPolicy& retry, int attempt) {
  if (retry.backoff_us <= 0) {
    return;
  }
  constexpr int64_t kMaxBackoffUs = 50'000;
  int64_t us = static_cast<int64_t>(retry.backoff_us);
  us <<= (attempt > 1 ? attempt - 1 : 0);
  if (us > kMaxBackoffUs) {
    us = kMaxBackoffUs;
  }
  ::usleep(static_cast<useconds_t>(us));
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kOnFlush:
      return "flush";
    case FsyncPolicy::kEveryN:
      return "everyn";
  }
  return "unknown";
}

void SetDurableCrashHook(DurableCrashHook hook) { g_crash_hook = hook; }

void DurableCrashPoint(const char* point) {
  if (g_crash_hook != nullptr) {
    g_crash_hook(point);
  }
}

DurableFile::~DurableFile() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

DurableFile::DurableFile(DurableFile&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      size_(other.size_),
      retry_(other.retry_) {
  other.fd_ = -1;
}

DurableFile& DurableFile::operator=(DurableFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    size_ = other.size_;
    retry_ = other.retry_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<DurableFile> DurableFile::OpenAppend(const std::string& path,
                                              const RetryPolicy& retry) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return ErrnoError("open", path, errno);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoError("fstat", path, err);
  }
  return DurableFile(fd, path, static_cast<uint64_t>(st.st_size), retry);
}

StatusOr<DurableFile> DurableFile::CreateTruncate(const std::string& path,
                                                  const RetryPolicy& retry) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return ErrnoError("open", path, errno);
  }
  return DurableFile(fd, path, 0, retry);
}

Status DurableFile::WriteAll(const void* data, size_t n) {
  if (fd_ < 0) {
    return Status::Internal("DurableFile::WriteAll on a closed file: " +
                            path_);
  }
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t remaining = n;
  int attempts = 0;
  while (remaining > 0) {
    size_t ask = remaining;
    bool injected_short = false;
    if (MaybeInjectFault(FaultSite::kIoShortWrite) && remaining > 1) {
      // Simulate the kernel accepting only part of the buffer — the loop
      // must pick up exactly where the short write stopped.
      ask = remaining / 2;
      injected_short = true;
    }
    if (MaybeInjectFault(FaultSite::kIoNoSpace)) {
      ++attempts;
      DSPOT_COUNT("wal.write_retries", 1);
      if (attempts >= retry_.max_attempts) {
        return Status::IoError("write failed: " + path_ +
                               ": injected ENOSPC persisted through " +
                               std::to_string(attempts) + " attempts");
      }
      Backoff(retry_, attempts);
      continue;
    }
    const ssize_t wrote = ::write(fd_, p, ask);
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;  // interrupted before any byte moved; not an attempt
      }
      const int err = errno;
      ++attempts;
      DSPOT_COUNT("wal.write_retries", 1);
      if ((err != EAGAIN && err != ENOSPC) ||
          attempts >= retry_.max_attempts) {
        return ErrnoError("write", path_, err);
      }
      Backoff(retry_, attempts);
      continue;
    }
    p += wrote;
    remaining -= static_cast<size_t>(wrote);
    size_ += static_cast<uint64_t>(wrote);
    DurableCrashPoint(injected_short || remaining > 0 ? "file.partial"
                                                      : "file.write");
  }
  return Status::Ok();
}

Status DurableFile::Sync() {
  if (fd_ < 0) {
    return Status::Internal("DurableFile::Sync on a closed file: " + path_);
  }
  if (MaybeInjectFault(FaultSite::kIoFsyncFailure)) {
    return Status::IoError("fsync failed: " + path_ +
                           ": injected I/O error (not retried: a failed "
                           "fsync may have dropped the dirty pages)");
  }
  if (::fsync(fd_) != 0) {
    return ErrnoError("fsync", path_, errno);
  }
  DSPOT_COUNT("wal.syncs", 1);
  return Status::Ok();
}

Status DurableFile::Close() {
  if (fd_ < 0) {
    return Status::Ok();
  }
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) {
    return ErrnoError("close", path_, errno);
  }
  return Status::Ok();
}

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return ErrnoError("open directory", dir, errno);
  }
  if (MaybeInjectFault(FaultSite::kIoFsyncFailure)) {
    ::close(fd);
    return Status::IoError("fsync failed: " + dir + ": injected I/O error");
  }
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (rc != 0) {
    return ErrnoError("fsync directory", dir, err);
  }
  return Status::Ok();
}

Status TruncateFile(const std::string& path, uint64_t new_size) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return ErrnoError("open", path, errno);
  }
  if (::ftruncate(fd, static_cast<off_t>(new_size)) != 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoError("ftruncate", path, err);
  }
  const int rc = ::fsync(fd);
  const int err = errno;
  if (::close(fd) != 0) {
    return ErrnoError("close", path, errno);
  }
  if (rc != 0) {
    return ErrnoError("fsync", path, err);
  }
  return Status::Ok();
}

Status AtomicWriteFile(const std::string& path, const void* data, size_t n,
                       const RetryPolicy& retry) {
  DSPOT_SPAN("durable.atomic_write");
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  StatusOr<DurableFile> file = DurableFile::CreateTruncate(tmp, retry);
  if (!file.ok()) {
    return file.status();
  }
  // Any failure from here on unwinds through `fail`: remove the temp so a
  // retried save does not trip over a stale partial file. The destination
  // path is never touched until the rename.
  auto fail = [&tmp](Status status) {
    ::unlink(tmp.c_str());
    return status;
  };
  if (Status s = file->WriteAll(data, n); !s.ok()) {
    return fail(std::move(s));
  }
  DurableCrashPoint("atomic.tmp_written");
  if (Status s = file->Sync(); !s.ok()) {
    return fail(std::move(s));
  }
  DurableCrashPoint("atomic.tmp_synced");
  if (Status s = file->Close(); !s.ok()) {
    return fail(std::move(s));
  }
  if (MaybeInjectFault(FaultSite::kIoRenameFailure)) {
    return fail(Status::IoError("rename failed: " + tmp + " -> " + path +
                                ": injected I/O error"));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail(ErrnoError("rename", path, errno));
  }
  DurableCrashPoint("atomic.renamed");
  // The rename is in the directory's page cache; fsync the directory so
  // the new name survives a power loss too.
  if (Status s = SyncDir(DirOf(path)); !s.ok()) {
    return s;  // the destination already holds the complete new file
  }
  DSPOT_COUNT("durable.atomic_writes", 1);
  return Status::Ok();
}

}  // namespace dspot
