#ifndef DSPOT_PARALLEL_PARALLEL_FOR_H_
#define DSPOT_PARALLEL_PARALLEL_FOR_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "parallel/thread_pool.h"

namespace dspot {

/// Tuning knobs for the parallel loops below.
struct ParallelOptions {
  /// Worker threads to use: 0 = hardware concurrency, 1 = run serially on
  /// the calling thread (no pool involvement at all).
  size_t num_threads = 0;
  /// Minimum indices per task. Raising it trades load balance for lower
  /// scheduling overhead and larger per-task scratch reuse; a loop whose
  /// whole range fits in one grain runs inline.
  size_t grain = 1;
  /// Cooperative cancellation: once the token fires, runners stop
  /// claiming blocks (already-running block invocations finish) and the
  /// loop returns early, leaving unclaimed indices unprocessed. Inert by
  /// default. Long-running `fn` bodies should poll the same token.
  CancellationToken cancel;
};

/// Runs `fn(begin, end)` over a partition of [0, n) into contiguous
/// blocks of at least `options.grain` indices. Blocks are claimed by at
/// most `num_threads` concurrent runners through a shared atomic cursor
/// (self-scheduling), so skewed block costs rebalance automatically and
/// the configured thread count is honored even when the shared pool is
/// larger. Each `fn` invocation covers one block; a runner invokes it for
/// several blocks in sequence, so per-invocation scratch is amortized
/// over `grain` indices.
///
/// Determinism contract: `fn` must write only to slots derived from its
/// indices (and read only shared immutable state); then the aggregate
/// result is bit-identical for every `num_threads`, because each index is
/// processed exactly once and lands in the same slot regardless of which
/// thread claims it. Blocking calls inside `fn` may execute other queued
/// tasks on this thread (nested parallel sections do this by design).
template <typename BlockFn>
void ParallelForBlocks(size_t n, const ParallelOptions& options,
                       const BlockFn& fn) {
  if (n == 0) {
    return;
  }
  const size_t threads = EffectiveNumThreads(options.num_threads);
  const size_t grain = std::max<size_t>(options.grain, 1);
  if (options.cancel.cancelled()) {
    return;
  }
  if (threads <= 1 || n <= grain) {
    fn(0, n);
    return;
  }
  // ~4 blocks per runner keeps the tail short without shredding the range
  // below the grain size.
  const size_t target_blocks = threads * 4;
  const size_t block_size =
      std::max(grain, (n + target_blocks - 1) / target_blocks);
  const size_t blocks = (n + block_size - 1) / block_size;
  const size_t runners = std::min(threads, blocks);

  ThreadPool& pool = ThreadPool::Shared(threads);
  std::atomic<size_t> next_block{0};
  // Cancellation-aware group: runners not yet started are dropped at
  // dequeue time, and started runners re-check the token before each
  // block claim, so a cancelled loop drains within one block.
  TaskGroup group(&pool, options.cancel);
  for (size_t r = 0; r < runners; ++r) {
    group.Run([&next_block, &fn, &options, n, blocks, block_size] {
      for (;;) {
        if (options.cancel.cancelled()) {
          return;
        }
        const size_t b = next_block.fetch_add(1, std::memory_order_relaxed);
        if (b >= blocks) {
          return;
        }
        const size_t begin = b * block_size;
        fn(begin, std::min(n, begin + block_size));
      }
    });
  }
  group.Wait();
}

/// Runs `fn(i)` for every i in [0, n). See ParallelForBlocks for the
/// scheduling and determinism contract.
template <typename Fn>
void ParallelFor(size_t n, const ParallelOptions& options, const Fn& fn) {
  ParallelForBlocks(n, options, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      fn(i);
    }
  });
}

/// Maps `fn(i) -> StatusOr<T>` over [0, n) in parallel and collects the
/// values into a vector in index order (slot i holds fn(i), bit-identical
/// at any thread count). Errors do not tear down in-flight work: every
/// index still runs, and the returned status is the error of the *lowest
/// failing index* — the same error a serial first-failure loop reports,
/// keeping the error path deterministic too.
template <typename T, typename Fn>
StatusOr<std::vector<T>> ParallelMap(size_t n, const ParallelOptions& options,
                                     const Fn& fn) {
  std::vector<std::optional<T>> slots(n);
  std::vector<Status> statuses(n, Status::Ok());
  ParallelFor(n, options, [&slots, &statuses, &fn](size_t i) {
    StatusOr<T> result = fn(i);
    if (result.ok()) {
      slots[i] = std::move(result).value();
    } else {
      statuses[i] = result.status();
    }
  });
  for (size_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) {
      return statuses[i];
    }
  }
  std::vector<T> values;
  values.reserve(n);
  for (std::optional<T>& slot : slots) {
    values.push_back(std::move(*slot));
  }
  return values;
}

/// Like ParallelMap, but keeps *every* per-index outcome instead of
/// collapsing to the first error: slot i holds fn(i)'s StatusOr verbatim,
/// so callers can implement skip-and-report policies (use the successful
/// fits, surface the failed indices) without losing partial work. Indices
/// skipped by a cancelled token (see ParallelOptions::cancel) come back as
/// Status::Cancelled in their slots. Same determinism contract as
/// ParallelMap: slot contents are bit-identical at any thread count.
template <typename T, typename Fn>
std::vector<StatusOr<T>> ParallelTryMap(size_t n,
                                        const ParallelOptions& options,
                                        const Fn& fn) {
  std::vector<StatusOr<T>> slots;
  slots.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    slots.emplace_back(Status::Cancelled("ParallelTryMap: index not run"));
  }
  ParallelFor(n, options, [&slots, &fn](size_t i) { slots[i] = fn(i); });
  return slots;
}

}  // namespace dspot

#endif  // DSPOT_PARALLEL_PARALLEL_FOR_H_
