#include "common/parse_util.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

namespace dspot {

namespace {

std::string Quoted(std::string_view text) {
  return "'" + std::string(text) + "'";
}

}  // namespace

StatusOr<int64_t> ParseInt64Text(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("expected an integer, got empty text");
  }
  // from_chars accepts a leading '-' but not '+'; tolerate the explicit
  // plus sign since "+5" is unambiguous.
  std::string_view body = text;
  if (body.front() == '+') {
    body.remove_prefix(1);
    if (body.empty() || body.front() == '-') {
      return Status::InvalidArgument("not an integer: " + Quoted(text));
    }
  }
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(body.data(), body.data() + body.size(), value, 10);
  if (ec == std::errc::result_out_of_range) {
    return Status::InvalidArgument("integer out of range: " + Quoted(text));
  }
  if (ec != std::errc() || ptr != body.data() + body.size()) {
    return Status::InvalidArgument("not an integer: " + Quoted(text));
  }
  return value;
}

StatusOr<uint64_t> ParseByteSizeText(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("expected a byte size, got empty text");
  }
  // Split digits from the (optional) suffix. Signs are rejected outright:
  // "-1" must not wrap into an enormous budget and "+1K" buys nothing.
  size_t digits = 0;
  while (digits < text.size() && text[digits] >= '0' && text[digits] <= '9') {
    ++digits;
  }
  if (digits == 0) {
    return Status::InvalidArgument("not a byte size: " + Quoted(text));
  }
  const std::string_view body = text.substr(0, digits);
  std::string_view suffix = text.substr(digits);
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(body.data(), body.data() + body.size(), value, 10);
  if (ec != std::errc() || ptr != body.data() + body.size()) {
    return Status::InvalidArgument("byte size out of range: " + Quoted(text));
  }
  uint64_t multiplier = 1;
  if (!suffix.empty()) {
    switch (suffix.front()) {
      case 'k': case 'K': multiplier = uint64_t{1} << 10; break;
      case 'm': case 'M': multiplier = uint64_t{1} << 20; break;
      case 'g': case 'G': multiplier = uint64_t{1} << 30; break;
      case 't': case 'T': multiplier = uint64_t{1} << 40; break;
      case 'b': case 'B':
        // A bare "B" ("256B" = 256 bytes); the 'i' form needs a multiple.
        suffix.remove_prefix(1);
        if (!suffix.empty()) {
          return Status::InvalidArgument("not a byte size: " + Quoted(text));
        }
        return value;
      default:
        return Status::InvalidArgument("not a byte size: " + Quoted(text));
    }
    suffix.remove_prefix(1);
    if (!suffix.empty() && (suffix.front() == 'i' || suffix.front() == 'I')) {
      suffix.remove_prefix(1);
    }
    if (!suffix.empty() && (suffix.front() == 'b' || suffix.front() == 'B')) {
      suffix.remove_prefix(1);
    }
    if (!suffix.empty()) {
      return Status::InvalidArgument("not a byte size: " + Quoted(text));
    }
  }
  if (value != 0 &&
      value > std::numeric_limits<uint64_t>::max() / multiplier) {
    return Status::InvalidArgument("byte size out of range: " + Quoted(text));
  }
  return value * multiplier;
}

StatusOr<double> ParseDoubleText(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("expected a number, got empty text");
  }
  // strtod instead of from_chars<double>: full-consumption checking works
  // the same way and avoids relying on library support for the
  // floating-point overloads. The copy guarantees NUL termination.
  const std::string buffer(text);
  const char* begin = buffer.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end != begin + buffer.size() || end == begin) {
    return Status::InvalidArgument("not a number: " + Quoted(text));
  }
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("number out of range: " + Quoted(text));
  }
  return value;
}

}  // namespace dspot
