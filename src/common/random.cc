#include "common/random.h"

#include <algorithm>

namespace dspot {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double Random::Uniform() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Random::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Random::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

int64_t Random::Poisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  std::poisson_distribution<int64_t> dist(mean);
  return dist(engine_);
}

bool Random::Bernoulli(double p) {
  std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
  return dist(engine_);
}

double Random::Exponential(double rate) {
  std::exponential_distribution<double> dist(rate);
  return dist(engine_);
}

std::vector<double> Random::GaussianVector(size_t n, double mean,
                                           double stddev) {
  std::vector<double> out(n);
  for (double& v : out) {
    v = Gaussian(mean, stddev);
  }
  return out;
}

}  // namespace dspot
