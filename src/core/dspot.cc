#include "core/dspot.h"

#include <span>
#include <vector>

#include "core/cost.h"
#include "core/simulate.h"
#include "obs/metrics.h"
#include "parallel/parallel_for.h"
#include "timeseries/metrics.h"

namespace dspot {

Series DspotResult::LocalEstimate(size_t keyword, size_t location) const {
  return SimulateLocal(params, keyword, location, params.num_ticks);
}

std::vector<std::string> DspotResult::DescribeShocks(size_t keyword) const {
  std::vector<std::string> out;
  for (const Shock& shock : params.shocks) {
    if (shock.keyword == keyword) {
      out.push_back(shock.ToString());
    }
  }
  return out;
}

bool DspotResult::AllKeywordsOk() const {
  for (const Status& status : keyword_status) {
    if (!status.ok()) return false;
  }
  return true;
}

StatusOr<DspotResult> FitDspot(const ActivityTensor& tensor,
                               const DspotOptions& options) {
  DSPOT_SPAN("fit_dspot");
  DSPOT_COUNT("fit_dspot.calls", 1);
  // num_threads is the pipeline-wide knob: it overrides whatever the
  // sub-option structs carry so callers configure one field, not three.
  // The guard works the same way: one deadline/token pair, built here,
  // shared by every stage (a per-stage budget would let a slow GLOBALFIT
  // starve LOCALFIT without the total ever looking over budget).
  GuardContext guard;
  guard.deadline = options.time_budget_ms > 0.0
                       ? Deadline::AfterMillis(options.time_budget_ms)
                       : Deadline::Infinite();
  guard.cancel = options.cancel;

  GlobalFitOptions global_options = options.global;
  global_options.num_threads = options.num_threads;
  global_options.guard = guard;
  global_options.on_keyword_error = options.on_keyword_error;
  global_options.warm_start = options.warm_start;
  LocalFitOptions local_options = options.local;
  local_options.num_threads = options.num_threads;
  local_options.guard = guard;

  DspotResult result;
  {
    DSPOT_SPAN("fit_dspot.global_fit");
    FitHealth global_health;
    DSPOT_ASSIGN_OR_RETURN(
        result.params, GlobalFit(tensor, global_options,
                                 &result.keyword_status, &global_health));
    result.health.Merge(global_health);
  }
  if (options.fit_local && tensor.num_locations() > 1) {
    DSPOT_SPAN("fit_dspot.local_fit");
    FitHealth local_health;
    DSPOT_RETURN_IF_ERROR(
        LocalFit(tensor, &result.params, local_options, &local_health));
    result.health.Merge(local_health);
  }
  DSPOT_SPAN("fit_dspot.estimate");
  const size_t d = tensor.num_keywords();
  result.global_estimates.resize(d);
  result.global_rmse.resize(d);
  ParallelOptions popts;
  popts.num_threads = options.num_threads;
  ParallelFor(d, popts, [&](size_t i) {
    Series estimate(tensor.num_ticks());
    ScheduleCache cache;
    SimulateGlobalInto(result.params, i, &cache, estimate.mutable_values());
    std::vector<double> actual(tensor.num_ticks());
    tensor.GlobalSequenceInto(i, actual);
    result.global_rmse[i] =
        Rmse(std::span<const double>(actual),
             std::span<const double>(estimate.values()));
    result.global_estimates[i] = std::move(estimate);
  });
  CostWorkspace cost_workspace;
  result.total_cost_bits = TotalCostBits(tensor, result.params,
                                         &cost_workspace);
  DSPOT_GAUGE_SET("fit_dspot.total_cost_bits", result.total_cost_bits);
  return result;
}

StatusOr<DspotResult> FitDspotSingle(const Series& sequence,
                                     const DspotOptions& options) {
  ActivityTensor tensor(1, 1, sequence.size());
  DSPOT_RETURN_IF_ERROR(tensor.SetLocalSequence(0, 0, sequence));
  DspotOptions single_options = options;
  single_options.fit_local = false;
  return FitDspot(tensor, single_options);
}

}  // namespace dspot
