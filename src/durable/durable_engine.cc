#include "durable/durable_engine.h"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "snapshot/codec.h"

namespace dspot {

namespace {

constexpr char kCkptMagic[8] = {'D', 'S', 'P', 'O', 'T', 'C', 'K', 'P'};
constexpr uint32_t kCkptVersion = 1;

/// Listing of the recognized files in a durable directory, by the
/// sequence number embedded in their names.
struct DirListing {
  std::vector<uint64_t> checkpoints;  ///< checkpoint seq, ascending
  std::vector<uint64_t> segments;     ///< segment base seq, ascending
};

/// True iff `name` is `prefix` + digits + `suffix`; extracts the digits.
bool ParseSeqName(const std::string& name, const char* prefix,
                  const char* suffix, uint64_t* seq) {
  const size_t plen = std::strlen(prefix);
  const size_t slen = std::strlen(suffix);
  if (name.size() <= plen + slen || name.compare(0, plen, prefix) != 0 ||
      name.compare(name.size() - slen, slen, suffix) != 0) {
    return false;
  }
  const std::string digits = name.substr(plen, name.size() - plen - slen);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *seq = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

/// Scans `dir`, removing leftover AtomicWriteFile temporaries (a crash
/// mid-checkpoint leaves one behind; it is garbage by construction).
StatusOr<DirListing> ScanDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IoError("cannot open directory: " + dir + ": " +
                           std::strerror(errno));
  }
  DirListing listing;
  std::vector<std::string> stale_tmp;
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    uint64_t seq = 0;
    if (ParseSeqName(name, "checkpoint-", ".ckpt", &seq)) {
      listing.checkpoints.push_back(seq);
    } else if (ParseSeqName(name, "wal-", ".log", &seq)) {
      listing.segments.push_back(seq);
    } else if (name.find(".tmp.") != std::string::npos) {
      stale_tmp.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  for (const std::string& tmp : stale_tmp) {
    ::unlink(tmp.c_str());
  }
  std::sort(listing.checkpoints.begin(), listing.checkpoints.end());
  std::sort(listing.segments.begin(), listing.segments.end());
  return listing;
}

Status WriteCheckpointFile(const std::string& path, uint64_t seq,
                           const std::vector<uint8_t>& payload,
                           const RetryPolicy& retry) {
  ByteWriter w;
  w.PutBytes(kCkptMagic, sizeof(kCkptMagic));
  w.PutU32(kCkptVersion);
  w.PutU64(seq);
  w.PutU64(payload.size());
  w.PutBytes(payload.data(), payload.size());
  w.PutU32(Crc32(payload.data(), payload.size()));
  return AtomicWriteFile(path, w.bytes().data(), w.size(), retry);
}

/// Validates and decodes one checkpoint file. `expected_seq` is the
/// sequence number from the file name; a mismatch with the embedded one
/// means the file was renamed or spliced and cannot be trusted.
StatusOr<std::unique_ptr<StreamEngine>> LoadCheckpointFile(
    const std::string& path, uint64_t expected_seq,
    const StreamOptions& runtime) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  if (!is && !is.eof()) {
    return Status::IoError("read failed: " + path);
  }
  const std::string bytes = buf.str();
  if (bytes.size() < sizeof(kCkptMagic) ||
      std::memcmp(bytes.data(), kCkptMagic, sizeof(kCkptMagic)) != 0) {
    return Status::DataLoss(path + ": not a dspot checkpoint (bad magic)");
  }
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  ByteReader r(data + sizeof(kCkptMagic), bytes.size() - sizeof(kCkptMagic),
               path);
  DSPOT_ASSIGN_OR_RETURN(const uint32_t version, r.GetU32());
  if (version != kCkptVersion) {
    return Status::InvalidArgument(
        path + ": unsupported checkpoint version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kCkptVersion) + ")");
  }
  DSPOT_ASSIGN_OR_RETURN(const uint64_t last_seq, r.GetU64());
  if (last_seq != expected_seq) {
    return r.CorruptAt("checkpoint claims sequence " +
                       std::to_string(last_seq) + " but its name says " +
                       std::to_string(expected_seq));
  }
  DSPOT_ASSIGN_OR_RETURN(
      const uint64_t payload_len,
      r.GetCount(r.remaining() > 4 ? r.remaining() - 4 : 0, "payload length"));
  const size_t payload_off = sizeof(kCkptMagic) + r.offset();
  const uint8_t* payload = data + payload_off;
  ByteReader trailer(payload + payload_len,
                     bytes.size() - payload_off - payload_len, path);
  DSPOT_ASSIGN_OR_RETURN(const uint32_t stored_crc, trailer.GetU32());
  const uint32_t crc = Crc32(payload, payload_len);
  if (crc != stored_crc) {
    return Status::DataLoss(path + ": offset " + std::to_string(payload_off) +
                            ": payload checksum mismatch (stored " +
                            std::to_string(stored_crc) + ", computed " +
                            std::to_string(crc) + ")");
  }
  return StreamEngine::DecodeState(payload, payload_len, runtime, path);
}

}  // namespace

std::string WalSegmentFileName(uint64_t base_seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.log",
                static_cast<unsigned long long>(base_seq));
  return buf;
}

std::string CheckpointFileName(uint64_t seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "checkpoint-%020llu.ckpt",
                static_cast<unsigned long long>(seq));
  return buf;
}

StatusOr<std::unique_ptr<DurableEngine>> DurableEngine::Open(
    const std::string& dir, const DurableOptions& options) {
  DSPOT_SPAN("durable.open");
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create directory: " + dir + ": " +
                           std::strerror(errno));
  }
  DSPOT_ASSIGN_OR_RETURN(const DirListing listing, ScanDir(dir));

  std::unique_ptr<DurableEngine> de(new DurableEngine(dir, options));
  RecoveryReport& rep = de->recovery_;

  // Seed the state: the newest checkpoint that validates, falling back
  // through older ones (each is only ever discarded for failing its own
  // CRC/framing — a plain crash never damages a completed checkpoint,
  // because checkpoints only appear via the atomic rename).
  uint64_t applied = 0;
  Status first_error = Status::Ok();
  for (auto it = listing.checkpoints.rbegin();
       it != listing.checkpoints.rend(); ++it) {
    StatusOr<std::unique_ptr<StreamEngine>> loaded = LoadCheckpointFile(
        dir + "/" + CheckpointFileName(*it), *it, options.stream);
    if (loaded.ok()) {
      de->engine_ = std::move(*loaded);
      applied = *it;
      rep.used_checkpoint = true;
      rep.checkpoint_seq = *it;
      de->last_checkpoint_seq_ = *it;
      break;
    }
    if (first_error.ok()) {
      first_error = loaded.status();
    }
    ++rep.checkpoints_discarded;
    DSPOT_COUNT("durable.checkpoints_discarded", 1);
  }
  if (de->engine_ == nullptr) {
    // No usable checkpoint. Starting from scratch is sound only when the
    // log still reaches back to sequence 1; otherwise pruned segments
    // make the state unreconstructible and the checkpoint error stands.
    if (!listing.checkpoints.empty() &&
        (listing.segments.empty() || listing.segments.front() != 1)) {
      return first_error;
    }
    de->engine_ = std::make_unique<StreamEngine>(options.stream);
    rep.fresh = listing.checkpoints.empty() && listing.segments.empty();
  }

  // Replay the WAL tail. Segments fully covered by the checkpoint are
  // skipped without reading — a crash can leave an unsynced (torn) tail
  // on a rotated-away segment, and its records are all duplicates anyway.
  for (size_t i = 0; i < listing.segments.size(); ++i) {
    const uint64_t base = listing.segments[i];
    const bool last = i + 1 == listing.segments.size();
    if (!last && listing.segments[i + 1] <= applied + 1) {
      continue;
    }
    const std::string path = dir + "/" + WalSegmentFileName(base);
    DSPOT_ASSIGN_OR_RETURN(const WalSegmentScan scan,
                           ReadWalSegment(path, base, last));
    for (const WalRecord& rec : scan.records) {
      if (rec.seq <= applied) {
        continue;
      }
      if (rec.seq != applied + 1) {
        return Status::DataLoss(
            path + ": record sequence " + std::to_string(rec.seq) +
            " follows " + std::to_string(applied) +
            " — a WAL segment is missing");
      }
      DSPOT_RETURN_IF_ERROR(de->ApplyRecord(rec));
      applied = rec.seq;
    }
    if (last && scan.truncated_bytes > 0) {
      DSPOT_RETURN_IF_ERROR(TruncateFile(path, scan.valid_bytes));
      rep.truncated_bytes = scan.truncated_bytes;
      DSPOT_COUNT("durable.torn_tails", 1);
    }
  }
  rep.last_seq = applied;

  if (rep.fresh) {
    // Make the semantic options durable before the first append: an empty
    // checkpoint-0, then the first segment.
    DSPOT_RETURN_IF_ERROR(WriteCheckpointFile(
        dir + "/" + CheckpointFileName(0), 0, de->engine_->EncodeState(),
        options.retry));
    de->last_checkpoint_seq_ = 0;
    DSPOT_RETURN_IF_ERROR(de->OpenFreshSegment(0));
  } else if (listing.segments.empty()) {
    // Checkpoint written but the crash hit before its segment appeared.
    DSPOT_RETURN_IF_ERROR(de->OpenFreshSegment(applied));
  } else {
    // Resume appending exactly where the log left off.
    const std::string path =
        dir + "/" + WalSegmentFileName(listing.segments.back());
    DSPOT_ASSIGN_OR_RETURN(WalWriter wal,
                           WalWriter::Open(path, applied + 1, options.retry));
    de->wal_ = std::make_unique<WalWriter>(std::move(wal));
  }

  DSPOT_COUNT("durable.opens", 1);
  DSPOT_OBSERVE("durable.replayed_records",
                static_cast<double>(rep.replayed_interns +
                                    rep.replayed_appends +
                                    rep.replayed_flushes));
  return de;
}

Status DurableEngine::ApplyRecord(const WalRecord& rec) {
  switch (rec.type) {
    case WalRecordType::kIntern: {
      DSPOT_ASSIGN_OR_RETURN(const uint32_t id,
                             engine_->EnsureKeyword(rec.name));
      if (id != static_cast<uint32_t>(rec.a)) {
        return Status::DataLoss(
            "WAL replay interned \"" + rec.name + "\" as keyword " +
            std::to_string(id) + " but the log recorded " +
            std::to_string(rec.a) +
            " — the checkpoint and the log disagree");
      }
      ++recovery_.replayed_interns;
      return Status::Ok();
    }
    case WalRecordType::kAppend: {
      Status s = engine_->AppendById(static_cast<uint32_t>(rec.a),
                                     static_cast<int64_t>(rec.b),
                                     std::bit_cast<double>(rec.c));
      if (!s.ok()) {
        // The engine accepted this tick when it was logged, so a replay
        // rejection means the state diverged from the log's history.
        return Status::DataLoss(
            "WAL replay of append (seq " + std::to_string(rec.seq) +
            ") was rejected: " + s.message());
      }
      ++recovery_.replayed_appends;
      return Status::Ok();
    }
    case WalRecordType::kFlushMark: {
      StatusOr<StreamFlushReport> r = engine_->Flush();
      if (!r.ok()) {
        return r.status();
      }
      ++recovery_.replayed_flushes;
      return Status::Ok();
    }
    case WalRecordType::kCheckpointRef:
      return Status::Ok();
  }
  return Status::Internal("unhandled WAL record type");
}

Status DurableEngine::LogRecord(WalRecordType type, uint64_t a, uint64_t b,
                                uint64_t c, std::string_view name,
                                bool boundary) {
  DSPOT_RETURN_IF_ERROR(wal_->Append(type, a, b, c, name));
  switch (options_.fsync_policy) {
    case FsyncPolicy::kNever:
      break;
    case FsyncPolicy::kOnFlush:
      if (boundary) {
        DSPOT_RETURN_IF_ERROR(wal_->Sync());
      }
      break;
    case FsyncPolicy::kEveryN:
      if (++records_since_sync_ >=
          (options_.fsync_every_n > 0 ? options_.fsync_every_n : 1)) {
        DSPOT_RETURN_IF_ERROR(wal_->Sync());
        records_since_sync_ = 0;
      }
      break;
  }
  DSPOT_GAUGE_SET("durable.wal_bytes", static_cast<double>(wal_->size()));
  return Status::Ok();
}

StatusOr<uint32_t> DurableEngine::EnsureKeyword(std::string_view keyword) {
  const size_t before = engine_->num_keywords();
  DSPOT_ASSIGN_OR_RETURN(const uint32_t id, engine_->EnsureKeyword(keyword));
  if (engine_->num_keywords() > before) {
    DSPOT_RETURN_IF_ERROR(LogRecord(WalRecordType::kIntern, id, 0, 0, keyword,
                                    /*boundary=*/false));
  }
  return id;
}

Status DurableEngine::AppendById(uint32_t keyword, int64_t timestamp,
                                 double count) {
  // Apply first, log second: a rejected append (stale timestamp, unknown
  // keyword) never reaches the log, so replay only sees accepted ticks.
  DSPOT_RETURN_IF_ERROR(engine_->AppendById(keyword, timestamp, count));
  return LogRecord(WalRecordType::kAppend, keyword,
                   static_cast<uint64_t>(timestamp),
                   std::bit_cast<uint64_t>(count), {}, /*boundary=*/false);
}

Status DurableEngine::Append(std::string_view keyword,
                             std::string_view location, int64_t timestamp,
                             double count) {
  (void)location;  // folded into the global sequence, as in StreamEngine
  DSPOT_ASSIGN_OR_RETURN(const uint32_t id, EnsureKeyword(keyword));
  return AppendById(id, timestamp, count);
}

StatusOr<StreamFlushReport> DurableEngine::Flush() {
  DSPOT_ASSIGN_OR_RETURN(const StreamFlushReport report, engine_->Flush());
  DSPOT_RETURN_IF_ERROR(
      LogRecord(WalRecordType::kFlushMark, 0, 0, 0, {}, /*boundary=*/true));
  ++flushes_since_checkpoint_;
  const bool by_flushes =
      options_.checkpoint_every_flushes > 0 &&
      flushes_since_checkpoint_ >= options_.checkpoint_every_flushes;
  const bool by_bytes =
      options_.max_wal_bytes > 0 && wal_->size() >= options_.max_wal_bytes;
  if (by_flushes || by_bytes) {
    // Auto-checkpoint failure is not a flush failure: the flush itself is
    // applied and logged, the previous checkpoint and live WAL are still
    // intact, and the trigger stays armed for the next flush.
    if (Status s = Checkpoint(); !s.ok()) {
      DSPOT_COUNT("durable.checkpoint_errors", 1);
    }
  }
  return report;
}

Status DurableEngine::Checkpoint() {
  const uint64_t seq = wal_->next_seq() - 1;
  if (seq == last_checkpoint_seq_) {
    return Status::Ok();  // nothing logged since the last one
  }
  DSPOT_SPAN("durable.checkpoint");
  // The outgoing segment must be durable before anything starts referring
  // past it (its tail may be unsynced under kNever/kEveryN).
  DSPOT_RETURN_IF_ERROR(wal_->Sync());
  DSPOT_RETURN_IF_ERROR(
      WriteCheckpointFile(dir_ + "/" + CheckpointFileName(seq), seq,
                          engine_->EncodeState(), options_.retry));
  previous_checkpoint_seq_ = last_checkpoint_seq_;
  last_checkpoint_seq_ = seq;
  DSPOT_RETURN_IF_ERROR(OpenFreshSegment(seq));
  flushes_since_checkpoint_ = 0;
  records_since_sync_ = 0;
  PruneObsoleteFiles();  // best-effort; stale files are harmless
  DSPOT_COUNT("durable.checkpoints", 1);
  return Status::Ok();
}

Status DurableEngine::OpenFreshSegment(uint64_t checkpoint_seq) {
  const std::string path =
      dir_ + "/" + WalSegmentFileName(checkpoint_seq + 1);
  DSPOT_ASSIGN_OR_RETURN(
      WalWriter wal, WalWriter::Open(path, checkpoint_seq + 1, options_.retry));
  wal_ = std::make_unique<WalWriter>(std::move(wal));
  DSPOT_RETURN_IF_ERROR(wal_->Append(WalRecordType::kCheckpointRef,
                                     checkpoint_seq, 0, 0));
  DSPOT_RETURN_IF_ERROR(wal_->Sync());
  return SyncDir(dir_);
}

Status DurableEngine::PruneObsoleteFiles() {
  DSPOT_ASSIGN_OR_RETURN(const DirListing listing, ScanDir(dir_));
  if (listing.checkpoints.size() <= 2) {
    return Status::Ok();
  }
  // Keep the two newest checkpoints (the second is the fallback should
  // the newest later fail validation) and every segment the older of the
  // two would need for its own replay.
  const uint64_t older_kept =
      listing.checkpoints[listing.checkpoints.size() - 2];
  size_t pruned = 0;
  for (size_t i = 0; i + 2 < listing.checkpoints.size(); ++i) {
    const std::string path =
        dir_ + "/" + CheckpointFileName(listing.checkpoints[i]);
    pruned += ::unlink(path.c_str()) == 0 ? 1 : 0;
  }
  // The segment holding record older_kept + 1 is the one with the largest
  // base not exceeding it; everything before that segment is obsolete.
  uint64_t cut = 0;
  for (const uint64_t base : listing.segments) {
    if (base <= older_kept + 1 && base > cut) {
      cut = base;
    }
  }
  for (const uint64_t base : listing.segments) {
    if (base < cut) {
      const std::string path = dir_ + "/" + WalSegmentFileName(base);
      pruned += ::unlink(path.c_str()) == 0 ? 1 : 0;
    }
  }
  if (pruned > 0) {
    DSPOT_COUNT("durable.pruned_files", pruned);
  }
  return Status::Ok();
}

}  // namespace dspot
