#include "guard/guard.h"

#include <cstdio>
#include <limits>

#include "guard/fault_injector.h"
#include "obs/metrics.h"

namespace dspot {

Deadline Deadline::AfterMillis(double budget_ms) {
  Deadline d;
  d.armed_ = true;
  d.when_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(budget_ms));
  return d;
}

Deadline Deadline::At(std::chrono::steady_clock::time_point when) {
  Deadline d;
  d.armed_ = true;
  d.when_ = when;
  return d;
}

bool Deadline::expired() const {
  return armed_ && std::chrono::steady_clock::now() >= when_;
}

double Deadline::remaining_ms() const {
  if (!armed_) {
    return std::numeric_limits<double>::infinity();
  }
  return std::chrono::duration<double, std::milli>(
             when_ - std::chrono::steady_clock::now())
      .count();
}

CancellationToken CancellationToken::Cancellable() {
  CancellationToken token;
  token.flag_ = std::make_shared<std::atomic<bool>>(false);
  return token;
}

void CancellationToken::Cancel() const {
  if (flag_ != nullptr) {
    flag_->store(true, std::memory_order_release);
  }
}

Status GuardContext::Check(const char* where) const {
  if (cancel.cancelled()) {
    DSPOT_COUNT("guard.cancel_hits", 1);
    return Status::Cancelled(std::string(where) + ": cancellation requested");
  }
  if (deadline.expired() || MaybeInjectFault(FaultSite::kDeadlineExpiry)) {
    DSPOT_COUNT("guard.deadline_hits", 1);
    return Status::DeadlineExceeded(std::string(where) +
                                    ": time budget exhausted");
  }
  return Status::Ok();
}

const char* FitTerminationName(FitTermination termination) {
  switch (termination) {
    case FitTermination::kConverged:
      return "Converged";
    case FitTermination::kMaxIterations:
      return "MaxIterations";
    case FitTermination::kStalled:
      return "Stalled";
    case FitTermination::kDeadlineExceeded:
      return "DeadlineExceeded";
    case FitTermination::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

void FitHealth::Merge(const FitHealth& other) {
  iterations += other.iterations;
  restarts += other.restarts;
  wall_time_ms += other.wall_time_ms;
  // The enum is declared in increasing severity order.
  if (static_cast<int>(other.termination) > static_cast<int>(termination)) {
    termination = other.termination;
  }
}

std::string FitHealth::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s in %d it (%d restarts, %.1f ms)",
                FitTerminationName(termination), iterations, restarts,
                wall_time_ms);
  return buf;
}

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace dspot
