#ifndef DSPOT_OPTIMIZE_LINE_SEARCH_H_
#define DSPOT_OPTIMIZE_LINE_SEARCH_H_

#include <cstddef>
#include <functional>

namespace dspot {

/// A scalar function of a single variable.
using Scalar1dFn = std::function<double(double)>;

/// Golden-section search for the minimum of a unimodal function on [lo, hi].
/// Returns the abscissa of the minimum; runs until the bracket shrinks below
/// `tolerance` or `max_iterations` passes.
double GoldenSectionMinimize(const Scalar1dFn& fn, double lo, double hi,
                             double tolerance = 1e-8,
                             int max_iterations = 200);

/// Evaluates `fn` at `steps`+1 evenly spaced points on [lo, hi] and returns
/// the abscissa of the best one. Robust to multimodality; used to seed
/// golden-section refinement for discrete-ish parameters such as the growth
/// onset time t_eta.
double GridMinimize(const Scalar1dFn& fn, double lo, double hi, size_t steps);

/// Grid scan followed by golden-section refinement around the best cell.
double GridThenGoldenMinimize(const Scalar1dFn& fn, double lo, double hi,
                              size_t grid_steps, double tolerance = 1e-8);

/// Monotone-safe 1-d minimization: grid + golden refinement, but returns
/// `current` unchanged unless the candidate is strictly better. Use this in
/// coordinate-descent loops where the objective may be multimodal — a
/// plain golden-section can otherwise *worsen* the incumbent.
double GuardedMinimize(const Scalar1dFn& fn, double lo, double hi,
                       double current, size_t grid_steps = 24,
                       double tolerance = 1e-6);

}  // namespace dspot

#endif  // DSPOT_OPTIMIZE_LINE_SEARCH_H_
