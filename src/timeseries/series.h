#ifndef DSPOT_TIMESERIES_SERIES_H_
#define DSPOT_TIMESERIES_SERIES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/math_util.h"

namespace dspot {

/// A univariate time series sampled at integer time-ticks 0..n-1. Missing
/// observations are encoded as NaN (see `kMissingValue`); all statistics in
/// this library skip missing entries.
class Series {
 public:
  Series() = default;

  /// A series of `n` zeros.
  explicit Series(size_t n) : values_(n, 0.0) {}

  /// Wraps existing values (NaN = missing).
  explicit Series(std::vector<double> values) : values_(std::move(values)) {}

  Series(const Series&) = default;
  Series& operator=(const Series&) = default;
  Series(Series&&) noexcept = default;
  Series& operator=(Series&&) noexcept = default;

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double& operator[](size_t t) { return values_[t]; }
  double operator[](size_t t) const { return values_[t]; }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  /// Number of non-missing observations.
  size_t observed_count() const;

  /// True iff tick `t` holds a real observation.
  bool IsObserved(size_t t) const { return !IsMissing(values_[t]); }

  /// Sub-series [begin, end). Clamps `end` to size().
  Series Slice(size_t begin, size_t end) const;

  /// Element-wise sum of two equal-length series; a missing entry in either
  /// operand yields a missing entry in the result.
  static Series AddTogether(const Series& a, const Series& b);

  /// Returns a copy with every missing entry replaced by linear
  /// interpolation between its observed neighbours (edges take the nearest
  /// observed value; an all-missing series becomes all zeros).
  Series Interpolated() const;

  /// Returns a copy scaled so the max observed value is `target_max`
  /// (no-op for non-positive maxima).
  Series RescaledToMax(double target_max) const;

  /// Summary statistics (over observed entries).
  double MeanValue() const { return Mean(values_); }
  double MaxValue() const { return dspot::Max(values_); }
  double MinValue() const { return dspot::Min(values_); }
  double SumValue() const { return Sum(values_); }

  /// Debug rendering: "[v0, v1, ...]".
  std::string ToString(size_t max_elements = 16) const;

 private:
  std::vector<double> values_;
};

}  // namespace dspot

#endif  // DSPOT_TIMESERIES_SERIES_H_
