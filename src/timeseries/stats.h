#ifndef DSPOT_TIMESERIES_STATS_H_
#define DSPOT_TIMESERIES_STATS_H_

#include <cstddef>
#include <vector>

#include "timeseries/series.h"

namespace dspot {

/// Spectral / correlation statistics used by the shock-period detector.

/// Sample autocorrelation of `s` at lags 0..max_lag (missing values are
/// interpolated first). acf[0] == 1 whenever the series has variance.
std::vector<double> Autocorrelation(const Series& s, size_t max_lag);

/// Raw periodogram power at integer periods 2..max_period, computed from a
/// naive DFT (adequate for n up to a few thousand). Element k of the result
/// is the power associated with period k (entries 0 and 1 are zero).
std::vector<double> PeriodogramByPeriod(const Series& s, size_t max_period);

/// Candidate periodicities of `s`, strongest first: local maxima of the
/// autocorrelation above `min_acf`, deduplicated so no candidate is within
/// +-`dedup_window` of a stronger one. Used to propose shock cycles t_p.
std::vector<size_t> CandidatePeriods(const Series& s, size_t max_period,
                                     double min_acf = 0.2,
                                     size_t dedup_window = 2,
                                     size_t max_candidates = 5);

/// Z-scores of `s` against its own mean/stddev; missing entries stay
/// missing.
std::vector<double> ZScores(const Series& s);

}  // namespace dspot

#endif  // DSPOT_TIMESERIES_STATS_H_
