#include "core/dspot.h"

#include "core/cost.h"
#include "core/simulate.h"
#include "timeseries/metrics.h"

namespace dspot {

Series DspotResult::LocalEstimate(size_t keyword, size_t location) const {
  return SimulateLocal(params, keyword, location, params.num_ticks);
}

std::vector<std::string> DspotResult::DescribeShocks(size_t keyword) const {
  std::vector<std::string> out;
  for (const Shock& shock : params.shocks) {
    if (shock.keyword == keyword) {
      out.push_back(shock.ToString());
    }
  }
  return out;
}

StatusOr<DspotResult> FitDspot(const ActivityTensor& tensor,
                               const DspotOptions& options) {
  DspotResult result;
  DSPOT_ASSIGN_OR_RETURN(result.params, GlobalFit(tensor, options.global));
  if (options.fit_local && tensor.num_locations() > 1) {
    DSPOT_RETURN_IF_ERROR(LocalFit(tensor, &result.params, options.local));
  }
  const size_t d = tensor.num_keywords();
  result.global_estimates.reserve(d);
  result.global_rmse.reserve(d);
  for (size_t i = 0; i < d; ++i) {
    Series estimate = SimulateGlobal(result.params, i, tensor.num_ticks());
    result.global_rmse.push_back(Rmse(tensor.GlobalSequence(i), estimate));
    result.global_estimates.push_back(std::move(estimate));
  }
  result.total_cost_bits = TotalCostBits(tensor, result.params);
  return result;
}

StatusOr<DspotResult> FitDspotSingle(const Series& sequence,
                                     const DspotOptions& options) {
  ActivityTensor tensor(1, 1, sequence.size());
  DSPOT_RETURN_IF_ERROR(tensor.SetLocalSequence(0, 0, sequence));
  DspotOptions single_options = options;
  single_options.fit_local = false;
  return FitDspot(tensor, single_options);
}

}  // namespace dspot
