// dspot_durable: crash durability. The suite covers the DurableFile
// primitives (partial-write continuation, bounded ENOSPC retry, fsync
// failure semantics, atomic replacement that never damages the
// destination), the WAL frame codec (round-trip, torn-tail truncation
// versus located mid-log corruption), the DurableEngine lifecycle
// (checkpoint rotation, pruning, corrupt-checkpoint fallback, WAL-tail
// replay), a randomized torn-write fuzz loop over recovery, and the
// crash-kill harness: a forked child is SIGKILLed at random operation
// boundaries and random I/O points, hundreds of times, and the recovered
// state must always be a valid prefix of the uninterrupted run — at one
// worker thread and at eight.

#include "durable/durable_engine.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "durable/durable_file.h"
#include "durable/wal.h"
#include "guard/fault_injector.h"
#include "snapshot/snapshot.h"
#include "stream/stream_engine.h"
#include "tensor/tensor_io.h"
#include "timeseries/series.h"

namespace dspot {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(os) << path;
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good()) << path;
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return names;
  }
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name != "." && name != "..") {
      names.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

size_t CountPrefixed(const std::vector<std::string>& names,
                     const std::string& prefix) {
  size_t n = 0;
  for (const std::string& name : names) {
    if (name.rfind(prefix, 0) == 0) {
      ++n;
    }
  }
  return n;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = TempPath(name);
  std::string cmd = "rm -rf '" + dir + "'";
  if (std::system(cmd.c_str()) != 0) {
    ADD_FAILURE() << "cleanup failed for " << dir;
  }
  return dir;
}

void CopyDir(const std::string& from, const std::string& to) {
  ASSERT_EQ(::mkdir(to.c_str(), 0755), 0) << to << ": " << std::strerror(errno);
  for (const std::string& name : ListDir(from)) {
    auto bytes = ReadFileBytes(from + "/" + name);
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    WriteFileBytes(to + "/" + name, *bytes);
  }
}

// ---------------------------------------------------------------------------
// DurableFile + AtomicWriteFile
// ---------------------------------------------------------------------------

TEST(DurableFile, AppendTracksSizeAcrossReopen) {
  const std::string path = TempPath("durable_append.bin");
  ::unlink(path.c_str());
  {
    auto file = DurableFile::OpenAppend(path, RetryPolicy());
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    ASSERT_TRUE(file->WriteAll("hello", 5).ok());
    EXPECT_EQ(file->size(), 5u);
    ASSERT_TRUE(file->Sync().ok());
    ASSERT_TRUE(file->Close().ok());
    EXPECT_FALSE(file->is_open());
    EXPECT_TRUE(file->Close().ok());  // idempotent
  }
  auto file = DurableFile::OpenAppend(path, RetryPolicy());
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->size(), 5u);  // fstat at open, not zero
  ASSERT_TRUE(file->WriteAll(" world", 6).ok());
  ASSERT_TRUE(file->Close().ok());
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "hello world");
}

TEST(DurableFile, ShortWriteContinuesWhereItStopped) {
  const std::string path = TempPath("durable_short.bin");
  ::unlink(path.c_str());
  auto file = DurableFile::OpenAppend(path, RetryPolicy());
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  std::string payload(1024, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i % 251);
  }
  // Every write() call is halved: the continuation loop must still land
  // every byte, in order, exactly once.
  FaultInjector::Instance().ArmSite(FaultSite::kIoShortWrite, 0xd1ce, 1.0);
  const Status s = file->WriteAll(payload.data(), payload.size());
  FaultInjector::Instance().Disarm();
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(file->Close().ok());
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, payload);
}

TEST(DurableFile, NoSpaceExhaustsBoundedRetries) {
  const std::string path = TempPath("durable_enospc.bin");
  ::unlink(path.c_str());
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.backoff_us = 0;  // keep the test instant
  auto file = DurableFile::OpenAppend(path, retry);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  FaultInjector::Instance().ArmSite(FaultSite::kIoNoSpace, 0xbeef, 1.0);
  const Status s = file->WriteAll("doomed", 6);
  FaultInjector::Instance().Disarm();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("3 attempts"), std::string::npos)
      << s.ToString();
}

TEST(DurableFile, FsyncFailureIsNotRetried) {
  const std::string path = TempPath("durable_fsync.bin");
  ::unlink(path.c_str());
  auto file = DurableFile::OpenAppend(path, RetryPolicy());
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE(file->WriteAll("x", 1).ok());
  FaultInjector::Instance().ArmExact(FaultSite::kIoFsyncFailure, 0);
  const Status s = file->Sync();
  // Exactly one fsync decision was drawn — no retry loop behind it.
  const uint64_t draws =
      FaultInjector::Instance().draws(FaultSite::kIoFsyncFailure);
  FaultInjector::Instance().Disarm();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(draws, 1u);
}

TEST(AtomicWrite, ReplacesDestinationAndCleansTemp) {
  const std::string path = TempPath("atomic_replace.bin");
  WriteFileBytes(path, "old contents");
  const std::string next = "new contents, longer than before";
  ASSERT_TRUE(AtomicWriteFile(path, next.data(), next.size()).ok());
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, next);
  for (const std::string& name : ListDir(DirOf(path))) {
    EXPECT_EQ(name.find("atomic_replace.bin.tmp."), std::string::npos)
        << "stale temp file " << name;
  }
}

TEST(AtomicWrite, RenameFailureLeavesDestinationUntouched) {
  const std::string path = TempPath("atomic_rename_fail.bin");
  WriteFileBytes(path, "the good file");
  FaultInjector::Instance().ArmExact(FaultSite::kIoRenameFailure, 0);
  const Status s = AtomicWriteFile(path, "garbage", 7);
  FaultInjector::Instance().Disarm();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "the good file");
  for (const std::string& name : ListDir(DirOf(path))) {
    EXPECT_EQ(name.find("atomic_rename_fail.bin.tmp."), std::string::npos)
        << "temp file not cleaned up: " << name;
  }
}

TEST(AtomicWrite, WriteFailureLeavesDestinationUntouched) {
  const std::string path = TempPath("atomic_write_fail.bin");
  WriteFileBytes(path, "the good file");
  RetryPolicy retry;
  retry.max_attempts = 2;
  retry.backoff_us = 0;
  FaultInjector::Instance().ArmSite(FaultSite::kIoNoSpace, 0xf00d, 1.0);
  const Status s = AtomicWriteFile(path, "garbage", 7, retry);
  FaultInjector::Instance().Disarm();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "the good file");
}

// ---------------------------------------------------------------------------
// Retrofitted writers: a failed save never leaves a truncated destination
// ---------------------------------------------------------------------------

TEST(WriterRetrofit, StreamSaveStateFailureKeepsPreviousState) {
  StreamOptions options;
  options.ring_capacity = 64;
  options.min_fit_ticks = 16;
  StreamEngine engine(options);
  for (int64_t t = 0; t < 20; ++t) {
    ASSERT_TRUE(engine.Append("kw", "", t, 10.0 + t).ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  const std::string path = TempPath("retrofit_stream.state");
  ASSERT_TRUE(engine.SaveState(path).ok());
  const std::vector<uint8_t> before_state = engine.EncodeState();

  ASSERT_TRUE(engine.Append("kw", "", 20, 99.0).ok());
  FaultInjector::Instance().ArmExact(FaultSite::kIoRenameFailure, 0);
  const Status failed = engine.SaveState(path);
  FaultInjector::Instance().Disarm();
  EXPECT_EQ(failed.code(), StatusCode::kIoError);

  // The earlier save must still load, bit-for-bit.
  auto loaded = StreamEngine::LoadState(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->EncodeState(), before_state);
}

TEST(WriterRetrofit, SnapshotSaveFailureKeepsPreviousFile) {
  ModelSnapshot snapshot;
  snapshot.keywords = {"alpha"};
  snapshot.locations = {"x"};
  snapshot.global_rmse = {1.5};
  // The loader validates label/rmse counts against the param counts, so
  // even this throwaway snapshot must be shape-consistent to read back.
  snapshot.params.num_keywords = 1;
  snapshot.params.num_locations = 1;
  snapshot.params.global.resize(1);
  const std::string path = TempPath("retrofit_snapshot.dspot");
  ASSERT_TRUE(SaveSnapshot(snapshot, path, SnapshotFormat::kBinary).ok());
  auto before = ReadFileBytes(path);
  ASSERT_TRUE(before.ok());

  snapshot.keywords.push_back("beta");
  snapshot.global_rmse.push_back(2.5);
  snapshot.params.num_keywords = 2;
  snapshot.params.global.resize(2);
  FaultInjector::Instance().ArmExact(FaultSite::kIoRenameFailure, 0);
  const Status failed = SaveSnapshot(snapshot, path, SnapshotFormat::kBinary);
  FaultInjector::Instance().Disarm();
  EXPECT_EQ(failed.code(), StatusCode::kIoError);

  auto after = ReadFileBytes(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->keywords.size(), 1u);
}

TEST(WriterRetrofit, SeriesCsvFailureKeepsPreviousFile) {
  const std::string path = TempPath("retrofit_series.csv");
  Series series(std::vector<double>{1.0, 2.0, 3.0});
  ASSERT_TRUE(SaveSeriesCsv(series, path).ok());
  auto before = ReadFileBytes(path);
  ASSERT_TRUE(before.ok());

  Series bigger(std::vector<double>{4.0, 5.0, 6.0, 7.0});
  FaultInjector::Instance().ArmExact(FaultSite::kIoRenameFailure, 0);
  const Status failed = SaveSeriesCsv(bigger, path);
  FaultInjector::Instance().Disarm();
  EXPECT_EQ(failed.code(), StatusCode::kIoError);

  auto after = ReadFileBytes(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);
}

// ---------------------------------------------------------------------------
// WAL codec
// ---------------------------------------------------------------------------

TEST(Wal, RoundTripAllRecordTypes) {
  const std::string path = TempPath("wal_roundtrip.log");
  ::unlink(path.c_str());
  {
    auto wal = WalWriter::Open(path, 1, RetryPolicy());
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    uint64_t seq = 0;
    ASSERT_TRUE(
        wal->Append(WalRecordType::kCheckpointRef, 0, 0, 0, {}, &seq).ok());
    EXPECT_EQ(seq, 1u);
    ASSERT_TRUE(
        wal->Append(WalRecordType::kIntern, 7, 0, 0, "keyword-name").ok());
    // A name of exactly 8 bytes must survive the 8-byte zero padding.
    ASSERT_TRUE(
        wal->Append(WalRecordType::kIntern, 8, 0, 0, "12345678").ok());
    ASSERT_TRUE(wal->Append(WalRecordType::kAppend, 7,
                            static_cast<uint64_t>(int64_t{-12}),
                            std::bit_cast<uint64_t>(3.75), {}, &seq)
                    .ok());
    EXPECT_EQ(seq, 4u);
    ASSERT_TRUE(wal->Append(WalRecordType::kFlushMark, 0, 0, 0).ok());
    ASSERT_TRUE(wal->Sync().ok());
    EXPECT_EQ(wal->next_seq(), 6u);
  }
  auto scan = ReadWalSegment(path, 1, /*allow_torn_tail=*/true);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->truncated_bytes, 0u);
  ASSERT_EQ(scan->records.size(), 5u);
  EXPECT_EQ(scan->records[0].type, WalRecordType::kCheckpointRef);
  EXPECT_EQ(scan->records[1].name, "keyword-name");
  EXPECT_EQ(scan->records[2].name, "12345678");
  EXPECT_EQ(scan->records[3].type, WalRecordType::kAppend);
  EXPECT_EQ(static_cast<int64_t>(scan->records[3].b), -12);
  EXPECT_EQ(std::bit_cast<double>(scan->records[3].c), 3.75);
  EXPECT_EQ(scan->records[4].seq, 5u);
}

TEST(Wal, RejectsNameOnNonInternRecords) {
  const std::string path = TempPath("wal_badname.log");
  ::unlink(path.c_str());
  auto wal = WalWriter::Open(path, 1, RetryPolicy());
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(
      wal->Append(WalRecordType::kAppend, 0, 0, 0, "nope").code(),
      StatusCode::kInternal);
}

TEST(Wal, EveryTruncationPointIsATornTail) {
  const std::string path = TempPath("wal_torn.log");
  ::unlink(path.c_str());
  std::vector<size_t> record_ends;
  {
    auto wal = WalWriter::Open(path, 1, RetryPolicy());
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 8; ++i) {
      const std::string name = i % 3 == 0 ? "kw" + std::to_string(i) : "";
      ASSERT_TRUE(wal->Append(name.empty() ? WalRecordType::kAppend
                                           : WalRecordType::kIntern,
                              static_cast<uint64_t>(i), 0, 0, name)
                      .ok());
      record_ends.push_back(wal->size());
    }
  }
  auto full = ReadFileBytes(path);
  ASSERT_TRUE(full.ok());
  // Chop the file at every byte boundary: recovery must always see the
  // longest record prefix plus a torn tail, never an error, never a
  // record that was not fully written.
  for (size_t cut = 0; cut <= full->size(); ++cut) {
    const std::string torn_path = TempPath("wal_torn_cut.log");
    WriteFileBytes(torn_path, full->substr(0, cut));
    auto scan = ReadWalSegment(torn_path, 1, /*allow_torn_tail=*/true);
    ASSERT_TRUE(scan.ok()) << "cut=" << cut << ": "
                           << scan.status().ToString();
    size_t expect_records = 0;
    while (expect_records < record_ends.size() &&
           record_ends[expect_records] <= cut) {
      ++expect_records;
    }
    EXPECT_EQ(scan->records.size(), expect_records) << "cut=" << cut;
    const size_t whole = expect_records == 0 ? 0
                                             : record_ends[expect_records - 1];
    EXPECT_EQ(scan->valid_bytes, whole) << "cut=" << cut;
    EXPECT_EQ(scan->truncated_bytes, cut - whole) << "cut=" << cut;
  }
}

TEST(Wal, MidLogCorruptionIsLocatedDataLossNotATornTail) {
  const std::string path = TempPath("wal_midflip.log");
  ::unlink(path.c_str());
  {
    auto wal = WalWriter::Open(path, 1, RetryPolicy());
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(wal->Append(WalRecordType::kAppend,
                              static_cast<uint64_t>(i), 0, 0)
                      .ok());
    }
  }
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  std::string flipped = *bytes;
  flipped[kWalFrameBytes + 10] ^= 0x40;  // inside record #2 of 6
  WriteFileBytes(path, flipped);
  auto scan = ReadWalSegment(path, 1, /*allow_torn_tail=*/true);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(scan.status().message().find(path), std::string::npos)
      << scan.status().ToString();
  EXPECT_NE(scan.status().message().find("offset"), std::string::npos);
  // In a non-final segment even a genuine tail tear is an error.
  WriteFileBytes(path, bytes->substr(0, bytes->size() - 7));
  auto strict = ReadWalSegment(path, 1, /*allow_torn_tail=*/false);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kDataLoss);
}

TEST(Wal, SequenceGapIsDataLoss) {
  const std::string path = TempPath("wal_gap.log");
  ::unlink(path.c_str());
  {
    auto wal = WalWriter::Open(path, 5, RetryPolicy());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(WalRecordType::kAppend, 1, 0, 0).ok());
  }
  auto scan = ReadWalSegment(path, 1, /*allow_torn_tail=*/true);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(scan.status().message().find("gap"), std::string::npos)
      << scan.status().ToString();
}

// ---------------------------------------------------------------------------
// DurableEngine lifecycle
// ---------------------------------------------------------------------------

/// One scripted operation against a durable (or reference) engine.
struct DurableOp {
  bool flush = false;
  std::string keyword;
  int64_t timestamp = 0;
  double count = 0.0;
};

/// The scripted workload shared by the lifecycle, fuzz, and crash tests:
/// two keywords appended in lockstep (so an intern can tear away from its
/// first append), a mid-stream burst, a flush every ten ticks.
std::vector<DurableOp> ScriptedOps(int64_t ticks) {
  std::vector<DurableOp> ops;
  for (int64_t t = 0; t < ticks; ++t) {
    const double base = 20.0 + static_cast<double>(t % 5) +
                        3.0 * std::sin(static_cast<double>(t) / 7.0);
    ops.push_back({false, "alpha", t, base + (t == 20 ? 80.0 : 0.0)});
    ops.push_back({false, "beta", t, base * 0.5});
    if ((t + 1) % 10 == 0) {
      ops.push_back({true, "", 0, 0.0});
    }
  }
  ops.push_back({true, "", 0, 0.0});
  return ops;
}

StreamOptions HarnessStreamOptions(size_t num_threads) {
  StreamOptions options;
  options.ring_capacity = 64;
  options.min_fit_ticks = 16;
  options.refit_interval = 8;
  options.forecast_horizon = 8;
  options.num_threads = num_threads;
  return options;
}

DurableOptions HarnessOptions(size_t num_threads,
                              FsyncPolicy policy = FsyncPolicy::kOnFlush) {
  DurableOptions options;
  options.fsync_policy = policy;
  options.fsync_every_n = 3;
  options.checkpoint_every_flushes = 2;
  options.retry.backoff_us = 0;
  options.stream = HarnessStreamOptions(num_threads);
  return options;
}

Status ApplyOp(DurableEngine* engine, const DurableOp& op) {
  if (op.flush) {
    return engine->Flush().status();
  }
  return engine->Append(op.keyword, "", op.timestamp, op.count);
}

/// Replays ops[0..k) into a fresh reference StreamEngine.
std::unique_ptr<StreamEngine> ReferencePrefix(
    const std::vector<DurableOp>& ops, size_t k, const StreamOptions& options) {
  auto engine = std::make_unique<StreamEngine>(options);
  for (size_t i = 0; i < k; ++i) {
    Status s = ops[i].flush ? engine->Flush().status()
                            : engine->Append(ops[i].keyword, "",
                                             ops[i].timestamp, ops[i].count);
    if (!s.ok()) {
      ADD_FAILURE() << "reference replay failed at op " << i << ": "
                    << s.ToString();
      return nullptr;
    }
  }
  return engine;
}

/// The prefix oracle: the recovered engine's monotonic counters identify
/// how many scripted ops survived; replaying exactly those ops into a
/// fresh engine must reproduce the recovered state bit-for-bit. The one
/// permitted divergence: a keyword whose intern record survived but whose
/// first append did not (the crash landed between the two WAL writes).
::testing::AssertionResult RecoveredIsValidPrefix(
    StreamEngine& recovered, const std::vector<DurableOp>& ops,
    const StreamOptions& options) {
  const StreamStats stats = recovered.stats();
  uint64_t appends = 0;
  uint64_t flushes = 0;
  size_t k = 0;
  while (k < ops.size() &&
         (appends < stats.appends || flushes < stats.flushes)) {
    if (ops[k].flush) {
      ++flushes;
    } else {
      ++appends;
    }
    ++k;
  }
  if (appends != stats.appends || flushes != stats.flushes) {
    return ::testing::AssertionFailure()
           << "recovered counters (appends=" << stats.appends
           << ", flushes=" << stats.flushes
           << ") do not match any prefix of the scripted ops";
  }
  std::unique_ptr<StreamEngine> reference = ReferencePrefix(ops, k, options);
  if (reference == nullptr) {
    return ::testing::AssertionFailure() << "reference replay failed";
  }
  if (recovered.num_keywords() == reference->num_keywords() + 1) {
    // Torn between intern and first append: op k must be the append that
    // would have interned the extra keyword.
    if (k >= ops.size() || ops[k].flush) {
      return ::testing::AssertionFailure()
             << "recovered engine has an extra keyword but op " << k
             << " could not have interned one";
    }
    auto id = reference->EnsureKeyword(ops[k].keyword);
    if (!id.ok()) {
      return ::testing::AssertionFailure() << id.status().ToString();
    }
  }
  if (recovered.EncodeState() != reference->EncodeState()) {
    return ::testing::AssertionFailure()
           << "recovered state is not the prefix state at k=" << k
           << " (appends=" << stats.appends << ", flushes=" << stats.flushes
           << ")";
  }
  return ::testing::AssertionSuccess();
}

TEST(DurableEngine, FreshOpenLaysDownCheckpointZeroAndFirstSegment) {
  const std::string dir = FreshDir("durable_fresh");
  auto engine = DurableEngine::Open(dir, HarnessOptions(1));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE((*engine)->recovery().fresh);
  EXPECT_EQ((*engine)->last_checkpoint_seq(), 0u);
  const std::vector<std::string> names = ListDir(dir);
  EXPECT_EQ(CountPrefixed(names, "checkpoint-"), 1u);
  EXPECT_EQ(CountPrefixed(names, "wal-"), 1u);
  // The options are durable before the first append: a reopen of the
  // empty directory is a recovery, not a fresh start.
  engine->reset();
  auto again = DurableEngine::Open(dir, HarnessOptions(1));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE((*again)->recovery().fresh);
  EXPECT_TRUE((*again)->recovery().used_checkpoint);
}

TEST(DurableEngine, CleanShutdownRecoversBitIdenticalState) {
  const std::string dir = FreshDir("durable_clean");
  const std::vector<DurableOp> ops = ScriptedOps(30);
  std::vector<uint8_t> final_state;
  {
    auto engine = DurableEngine::Open(dir, HarnessOptions(1));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    for (const DurableOp& op : ops) {
      ASSERT_TRUE(ApplyOp(engine->get(), op).ok());
    }
    final_state = (*engine)->engine().EncodeState();
  }
  auto recovered = DurableEngine::Open(dir, HarnessOptions(1));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->engine().EncodeState(), final_state);
  EXPECT_EQ((*recovered)->recovery().checkpoints_discarded, 0u);
  EXPECT_TRUE(
      RecoveredIsValidPrefix((*recovered)->engine(), ops,
                             HarnessStreamOptions(1)));
  // And the recovered engine keeps working: more ops, another recovery.
  ASSERT_TRUE((*recovered)->Append("alpha", "", 30, 25.0).ok());
  ASSERT_TRUE((*recovered)->Flush().ok());
  const std::vector<uint8_t> extended = (*recovered)->engine().EncodeState();
  recovered->reset();
  auto again = DurableEngine::Open(dir, HarnessOptions(1));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->engine().EncodeState(), extended);
}

TEST(DurableEngine, CheckpointRotationKeepsTwoAndPrunesTheRest) {
  const std::string dir = FreshDir("durable_rotate");
  auto engine = DurableEngine::Open(dir, HarnessOptions(1));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  for (const DurableOp& op : ScriptedOps(60)) {
    ASSERT_TRUE(ApplyOp(engine->get(), op).ok());
  }
  // checkpoint_every_flushes=2 over 7 flushes -> several rotations.
  const std::vector<std::string> names = ListDir(dir);
  EXPECT_LE(CountPrefixed(names, "checkpoint-"), 2u);
  EXPECT_GE(CountPrefixed(names, "checkpoint-"), 1u);
  EXPECT_LE(CountPrefixed(names, "wal-"), 3u);
  const std::vector<uint8_t> state = (*engine)->engine().EncodeState();
  engine->reset();
  auto recovered = DurableEngine::Open(dir, HarnessOptions(1));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->engine().EncodeState(), state);
}

TEST(DurableEngine, CorruptNewestCheckpointFallsBackToPrevious) {
  const std::string dir = FreshDir("durable_fallback");
  std::vector<uint8_t> state;
  {
    auto engine = DurableEngine::Open(dir, HarnessOptions(1));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    for (const DurableOp& op : ScriptedOps(40)) {
      ASSERT_TRUE(ApplyOp(engine->get(), op).ok());
    }
    state = (*engine)->engine().EncodeState();
  }
  // Flip one payload byte in the newest checkpoint: recovery must fall
  // back to the previous one and rebuild the tail from the WAL.
  std::string newest;
  for (const std::string& name : ListDir(dir)) {
    if (name.rfind("checkpoint-", 0) == 0) {
      newest = name;  // sorted ascending; the last wins
    }
  }
  ASSERT_FALSE(newest.empty());
  auto bytes = ReadFileBytes(dir + "/" + newest);
  ASSERT_TRUE(bytes.ok());
  std::string corrupt = *bytes;
  corrupt[corrupt.size() / 2] ^= 0x01;
  WriteFileBytes(dir + "/" + newest, corrupt);

  auto recovered = DurableEngine::Open(dir, HarnessOptions(1));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->recovery().checkpoints_discarded, 1u);
  EXPECT_EQ((*recovered)->engine().EncodeState(), state);
}

TEST(DurableEngine, TornLiveSegmentTailIsTruncatedOnRecovery) {
  const std::string dir = FreshDir("durable_torn_tail");
  const std::vector<DurableOp> ops = ScriptedOps(25);
  {
    auto engine = DurableEngine::Open(dir, HarnessOptions(1));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    for (const DurableOp& op : ops) {
      ASSERT_TRUE(ApplyOp(engine->get(), op).ok());
    }
  }
  // Tear the live segment mid-record, as a crash inside write() would.
  std::string live;
  for (const std::string& name : ListDir(dir)) {
    if (name.rfind("wal-", 0) == 0) {
      live = name;
    }
  }
  ASSERT_FALSE(live.empty());
  const std::string path = dir + "/" + live;
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_GT(bytes->size(), kWalFrameBytes + 11);
  WriteFileBytes(path, bytes->substr(0, bytes->size() - 11));

  auto recovered = DurableEngine::Open(dir, HarnessOptions(1));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GT((*recovered)->recovery().truncated_bytes, 0u);
  EXPECT_TRUE(RecoveredIsValidPrefix((*recovered)->engine(), ops,
                                     HarnessStreamOptions(1)));
}

TEST(DurableEngine, CheckpointFailureLeavesEngineRunning) {
  const std::string dir = FreshDir("durable_ckpt_fail");
  DurableOptions options = HarnessOptions(1);
  options.checkpoint_every_flushes = 1;  // checkpoint at every flush
  auto engine = DurableEngine::Open(dir, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  for (int64_t t = 0; t < 12; ++t) {
    ASSERT_TRUE((*engine)->Append("kw", "", t, 5.0 + t).ok());
  }
  // The auto-checkpoint's rename fails; the flush itself must succeed and
  // the engine must stay usable.
  FaultInjector::Instance().ArmExact(FaultSite::kIoRenameFailure, 0);
  auto report = (*engine)->Flush();
  FaultInjector::Instance().Disarm();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE((*engine)->Append("kw", "", 12, 17.0).ok());
  ASSERT_TRUE((*engine)->Flush().ok());  // this checkpoint succeeds
  const std::vector<uint8_t> state = (*engine)->engine().EncodeState();
  engine->reset();
  auto recovered = DurableEngine::Open(dir, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->engine().EncodeState(), state);
}

// ---------------------------------------------------------------------------
// Torn-write fuzz loop (the PR 5 SnapshotRobustness recipe, aimed at the
// WAL): random truncations and bit flips must recover to a valid prefix
// or fail with located kDataLoss — never crash, never silently diverge.
// ---------------------------------------------------------------------------

TEST(DurableFuzz, RandomTearsAndFlipsRecoverPrefixOrFailLoudly) {
  const std::string base = FreshDir("durable_fuzz_base");
  // 25 ticks -> the last checkpoint lands at the second flush, leaving a
  // live segment with real appends and a flush mark to tear into.
  const std::vector<DurableOp> ops = ScriptedOps(25);
  {
    auto engine = DurableEngine::Open(base, HarnessOptions(1));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    for (const DurableOp& op : ops) {
      ASSERT_TRUE(ApplyOp(engine->get(), op).ok());
    }
  }
  std::string live;
  for (const std::string& name : ListDir(base)) {
    if (name.rfind("wal-", 0) == 0) {
      live = name;  // sorted: the last wal- entry is the live segment
    }
  }
  ASSERT_FALSE(live.empty());

  const int kTrials = 400;
  int recovered_ok = 0;
  int data_loss = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    Random rng(0xF0220000 + static_cast<uint64_t>(trial));
    const std::string dir = FreshDir("durable_fuzz_trial");
    CopyDir(base, dir);
    const std::string path = dir + "/" + live;
    auto bytes = ReadFileBytes(path);
    ASSERT_TRUE(bytes.ok());
    std::string mutated = *bytes;
    if (rng.Bernoulli(0.5)) {
      mutated.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()))));
    } else {
      const int flips = static_cast<int>(rng.UniformInt(1, 3));
      for (int i = 0; i < flips && !mutated.empty(); ++i) {
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
        mutated[at] ^= static_cast<char>(rng.UniformInt(1, 255));
      }
    }
    WriteFileBytes(path, mutated);

    auto recovered = DurableEngine::Open(dir, HarnessOptions(1));
    if (recovered.ok()) {
      ++recovered_ok;
      ASSERT_TRUE(RecoveredIsValidPrefix((*recovered)->engine(), ops,
                                         HarnessStreamOptions(1)));
    } else {
      ++data_loss;
      // Never a crash, never an unlocated shrug: corruption that cannot
      // be proven a torn tail must say what and where.
      ASSERT_EQ(recovered.status().code(), StatusCode::kDataLoss)
          << recovered.status().ToString();
      ASSERT_FALSE(recovered.status().message().empty());
    }
  }
  // The mutation mix must actually exercise both outcomes.
  EXPECT_GT(recovered_ok, kTrials / 10);
  EXPECT_GT(data_loss, kTrials / 10);
}

// ---------------------------------------------------------------------------
// Crash-kill harness
// ---------------------------------------------------------------------------

std::atomic<long> g_kill_countdown{-1};

void KillAtIoPoint(const char* /*point*/) {
  if (g_kill_countdown.fetch_sub(1, std::memory_order_relaxed) == 0) {
    ::kill(::getpid(), SIGKILL);
    for (;;) {
      ::pause();  // multi-threaded child: wait for the kill to land
    }
  }
}

/// What a forked child does. Never returns.
[[noreturn]] void RunCrashChild(const std::string& dir,
                                const std::vector<DurableOp>& ops,
                                const DurableOptions& options,
                                long kill_after_op, long kill_at_io,
                                uint64_t fault_seed) {
  if (kill_at_io >= 0) {
    g_kill_countdown.store(kill_at_io, std::memory_order_relaxed);
    SetDurableCrashHook(&KillAtIoPoint);
    // Genuinely torn frames: some write() calls move only half their
    // bytes, so an I/O-point kill can land mid-record.
    FaultInjector::Instance().ArmSite(FaultSite::kIoShortWrite, fault_seed,
                                      0.25);
  }
  auto engine = DurableEngine::Open(dir, options);
  if (!engine.ok()) {
    _exit(3);
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ApplyOp(engine->get(), ops[i]).ok()) {
      _exit(4);
    }
    if (kill_after_op >= 0 && i == static_cast<size_t>(kill_after_op)) {
      ::kill(::getpid(), SIGKILL);
      for (;;) {
        ::pause();
      }
    }
  }
  _exit(0);
}

/// Recovery + prefix verification, also in a forked child so the parent
/// process never spawns engine threads (keeping every later fork safe).
/// Exits 0 on success; writes the failure detail next to the WAL dir.
[[noreturn]] void RunVerifyChild(const std::string& dir,
                                 const std::vector<DurableOp>& ops,
                                 const DurableOptions& options) {
  auto fail = [&dir](const std::string& why) {
    std::ofstream os(dir + "/verify_failure.txt");
    os << why << "\n";
    _exit(6);
  };
  auto recovered = DurableEngine::Open(dir, options);
  if (!recovered.ok()) {
    fail("recovery failed: " + recovered.status().ToString());
  }
  if ((*recovered)->recovery().checkpoints_discarded != 0) {
    fail("a crash left a corrupt checkpoint behind");
  }
  const ::testing::AssertionResult prefix = RecoveredIsValidPrefix(
      (*recovered)->engine(), ops, options.stream);
  if (!prefix) {
    fail(prefix.message());
  }
  _exit(0);
}

/// Waits for `pid`; returns its exit code, or -SIGNO if signaled.
int WaitChild(pid_t pid) {
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) {
    return -1000;
  }
  if (WIFSIGNALED(wstatus)) {
    return -WTERMSIG(wstatus);
  }
  if (WIFEXITED(wstatus)) {
    return WEXITSTATUS(wstatus);
  }
  return -1001;
}

void RunCrashKillHarness(size_t num_threads, int trials) {
  const std::vector<DurableOp> ops = ScriptedOps(30);
  const FsyncPolicy policies[] = {FsyncPolicy::kNever, FsyncPolicy::kOnFlush,
                                  FsyncPolicy::kEveryN};
  Random rng(0xC4A54000 + num_threads);
  for (int trial = 0; trial < trials; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial) + " @" +
                 std::to_string(num_threads) + " threads");
    const std::string dir =
        FreshDir("durable_crash_" + std::to_string(num_threads));
    const DurableOptions options =
        HarnessOptions(num_threads, policies[trial % 3]);
    // Alternate kill strategies: an op boundary (clean record boundary)
    // or the n-th durable I/O point (mid-append, mid-checkpoint, between
    // rename and directory sync, ...), with short writes injected so the
    // kill can land inside a half-written frame.
    long kill_after_op = -1;
    long kill_at_io = -1;
    if (trial % 2 == 0) {
      kill_after_op = rng.UniformInt(0, static_cast<int64_t>(ops.size()) - 1);
    } else {
      kill_at_io = rng.UniformInt(0, 400);
    }
    const uint64_t fault_seed = 0x10DEAD + static_cast<uint64_t>(trial);

    const pid_t crash_pid = ::fork();
    ASSERT_GE(crash_pid, 0);
    if (crash_pid == 0) {
      RunCrashChild(dir, ops, options, kill_after_op, kill_at_io, fault_seed);
    }
    const int crash_rc = WaitChild(crash_pid);
    // Acceptable ends: SIGKILLed, ran to completion, or a clean
    // operational failure (an injected short write starving an append).
    ASSERT_TRUE(crash_rc == -SIGKILL || crash_rc == 0 || crash_rc == 4)
        << "crash child ended with " << crash_rc;

    const pid_t verify_pid = ::fork();
    ASSERT_GE(verify_pid, 0);
    if (verify_pid == 0) {
      RunVerifyChild(dir, ops, options);
    }
    const int verify_rc = WaitChild(verify_pid);
    if (verify_rc != 0) {
      auto why = ReadFileBytes(dir + "/verify_failure.txt");
      FAIL() << "verification failed (rc=" << verify_rc << "): "
             << (why.ok() ? *why : "<no detail written>");
    }
  }
}

TEST(DurableCrash, SigkillHarnessSingleThread) {
  RunCrashKillHarness(/*num_threads=*/1, /*trials=*/110);
}

TEST(DurableCrash, SigkillHarnessEightThreads) {
  RunCrashKillHarness(/*num_threads=*/8, /*trials=*/110);
}

}  // namespace
}  // namespace dspot
