#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dspot {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) {
    return Matrix();
  }
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols_);
    for (size_t c = 0; c < m.cols_; ++c) {
      m(r, c) = rows[r][c];
    }
  }
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < rhs.cols_; ++c) {
        out(r, c) += a * rhs(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  assert(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) {
      sum += (*this)(r, c) * v[c];
    }
    out[r] = sum;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < out.data_.size(); ++i) {
    out.data_[i] += rhs.data_[i];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < out.data_.size(); ++i) {
    out.data_[i] -= rhs.data_[i];
  }
  return out;
}

Matrix& Matrix::Scale(double s) {
  for (double& v : data_) {
    v *= s;
  }
  return *this;
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Matrix Matrix::Gram() const {
  Matrix out;
  GramInto(&out);
  return out;
}

void Matrix::GramInto(Matrix* out) const {
  out->Resize(cols_, cols_);
  std::fill(out->data_.begin(), out->data_.end(), 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    for (size_t i = 0; i < cols_; ++i) {
      const double a = row[i];
      if (a == 0.0) continue;
      for (size_t j = i; j < cols_; ++j) {
        (*out)(i, j) += a * row[j];
      }
    }
  }
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = 0; j < i; ++j) {
      (*out)(i, j) = (*out)(j, i);
    }
  }
}

std::vector<double> Matrix::TransposedTimes(
    const std::vector<double>& v) const {
  std::vector<double> out(cols_, 0.0);
  TransposedTimesInto(v, out);
  return out;
}

void Matrix::TransposedTimesInto(std::span<const double> v,
                                 std::span<double> out) const {
  assert(v.size() == rows_);
  assert(out.size() == cols_);
  std::fill(out.begin(), out.end(), 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double s = v[r];
    if (s == 0.0) continue;
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) {
      out[c] += row[c] * s;
    }
  }
}

void Matrix::AddToDiagonal(double value) {
  const size_t n = std::min(rows_, cols_);
  for (size_t i = 0; i < n; ++i) {
    (*this)(i, i) += value;
  }
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) {
    best = std::max(best, std::fabs(v));
  }
  return best;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) {
    sum += v * v;
  }
  return std::sqrt(sum);
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace dspot
