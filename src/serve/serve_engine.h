#ifndef DSPOT_SERVE_SERVE_ENGINE_H_
#define DSPOT_SERVE_SERVE_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/global_fit.h"
#include "guard/guard.h"
#include "serve/model_registry.h"

namespace dspot {

/// dspot_serve's request path: a bounded admission queue feeding a
/// dispatcher that batches requests onto the dspot_parallel pool, with
/// per-request deadlines/cancellation via dspot_guard and a ModelRegistry
/// as the model store.
///
/// DETERMINISM: replies are a pure function of the request sequence, at
/// any worker thread count, provided (a) the registry has a spill
/// directory (so evictions reload bit-identically), (b) deadlines are
/// left infinite (expiry is a wall-clock event), and (c) the queue never
/// overflows (shedding depends on arrival timing). The dispatcher batches
/// FIFO prefixes and executes each keyword's requests sequentially in
/// admission order; requests of different keywords commute because every
/// model is keyed by its own keyword. serve_test holds an 8-thread run
/// bit-identical to a serial replay of the same log.

enum class ServeOp : uint32_t {
  kFit = 0,           ///< cold-fit `values`, store the model
  kRefit = 1,         ///< warm refit from the stored model (cold fallback)
  kForecast = 2,      ///< simulate `horizon` ticks past the fitted range
  kOutlierScore = 3,  ///< z-scores of `values` against the model estimate
};

/// Canonical lowercase name ("fit", "refit", ...); nullptr when invalid.
const char* ServeOpName(ServeOp op);

/// Upper bound on a forecast request's horizon AND on a stored model's
/// fitted range when forecasting: the simulation buffer spans
/// `fit_ticks + horizon` ticks, and both operands arrive from untrusted
/// bytes (the wire frame and the spill file respectively), so without a
/// cap a single hostile request could wrap the sum past SIZE_MAX (an
/// out-of-bounds iterator — UB) or demand a near-2^64-byte allocation.
/// 4Mi ticks keeps the worst-case curve at 64 MiB and the reply payload
/// under the wire frame cap (protocol.cc static_asserts the latter).
inline constexpr uint64_t kServeMaxForecastTicks = 4ull << 20;

struct ServeRequest {
  uint64_t id = 0;  ///< echoed in the reply; assigned by the client
  ServeOp op = ServeOp::kForecast;
  std::string keyword;
  /// Admission-quota bucket. NOT part of the wire request: the transport
  /// assigns it per connection (TCP tenant handshake; "" everywhere else,
  /// the default tenant). Replies never depend on it — it only decides
  /// which queue slice the request occupies and who gets shed first.
  std::string tenant;
  /// Observed activity: the series to fit (kFit/kRefit) or to score
  /// (kOutlierScore); unused by kForecast.
  std::vector<double> values;
  /// Forecast ticks past the fitted range (kForecast only).
  uint64_t horizon = 0;
  /// Per-request time budget, milliseconds; 0 inherits
  /// ServeOptions::default_deadline_ms (and 0 there means infinite). The
  /// deadline arms at ADMISSION, so queueing time counts against it.
  double deadline_ms = 0.0;
};

struct ServeReply {
  uint64_t id = 0;
  Status status = Status::Ok();
  /// Forecast values, outlier z-scores, or empty (fit/refit).
  std::vector<double> values;
  /// Model in-sample RMSE after the operation (fit/refit/forecast).
  double rmse = 0.0;
  /// Model MDL cost after the operation (fit/refit).
  double cost_bits = 0.0;
};

struct ServeOptions {
  /// Worker threads for batch execution (0 = hardware concurrency,
  /// 1 = serial). Replies are bit-identical across settings (see above).
  size_t num_threads = 1;
  /// Admission queue bound. A Submit against a full queue sheds the
  /// OLDEST queued request — its reply carries kResourceExhausted — and
  /// admits the new one: under overload the freshest work survives, and
  /// the shed client learns immediately instead of timing out. With
  /// tenant quotas active the victim is chosen WITHIN the offending
  /// tenant (see tenant_quota).
  size_t queue_cap = 1024;
  /// Per-tenant slice of the admission queue; 0 disables slicing (every
  /// tenant shares queue_cap, exactly the pre-tenant behavior). With a
  /// quota Q > 0, a tenant holding Q queued slots sheds ITS OWN oldest
  /// request to admit a new one, and a global overflow sheds the oldest
  /// request of the fullest tenant — so a flooding tenant evicts only
  /// itself and every fair tenant keeps its slice.
  size_t tenant_quota = 0;
  /// Default per-request budget when ServeRequest::deadline_ms == 0;
  /// 0 = infinite.
  double default_deadline_ms = 0.0;
  /// Max requests drained into one execution batch.
  size_t max_batch = 64;
  /// Record every ADMITTED request in admission order (TakeRequestLog);
  /// the determinism test and bench replay this log serially.
  bool record_log = false;
  /// Fit options for kFit/kRefit (guard is overwritten per request).
  GlobalFitOptions fit;
};

/// Monotonic engine counters (also exported as serve.* obs metrics).
struct ServeStats {
  uint64_t submitted = 0;          ///< admitted into the queue
  uint64_t completed = 0;          ///< replies delivered (any status)
  uint64_t admission_rejects = 0;  ///< shed with kResourceExhausted
  uint64_t deadline_expired = 0;   ///< replied kDeadlineExceeded unexecuted
  uint64_t batches = 0;            ///< dispatcher batches executed
  uint64_t max_queue_depth = 0;    ///< high-water mark of queued requests
};

/// Per-tenant admission accounting (keyed by ServeRequest::tenant; the
/// default tenant is ""). The fairness gates in bench_serve read these.
struct TenantCounters {
  uint64_t submitted = 0;  ///< admitted into this tenant's slice
  uint64_t shed = 0;       ///< this tenant's requests shed by admission
  uint64_t completed = 0;  ///< replies delivered (any status)
};

class ServeEngine {
 public:
  /// `registry` must outlive the engine. The dispatcher thread starts
  /// immediately.
  ServeEngine(ModelRegistry* registry, const ServeOptions& options);

  /// Stops the engine (see Stop()).
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Enqueues a request; the future resolves when its reply is ready
  /// (possibly with status kResourceExhausted if a later Submit sheds it,
  /// or kCancelled if the engine stops first). Never blocks on the queue.
  std::future<ServeReply> Submit(ServeRequest request);

  /// Like Submit, but delivers the reply through `done` instead of a
  /// future. `done` is invoked exactly once — possibly synchronously
  /// inside this call (stop/shed), otherwise from an engine thread — and
  /// must not block: the TCP transport uses it to hand replies back to
  /// the event loop without a polling thread per connection.
  void SubmitWithCallback(ServeRequest request,
                          std::function<void(ServeReply)> done);

  /// Submit + wait. Convenience for tests and serial clients.
  ServeReply Call(ServeRequest request);

  /// Stops the dispatcher: requests still queued are replied kCancelled,
  /// in-flight batches finish. Idempotent.
  void Stop();

  ServeStats stats() const;

  /// Per-tenant admission counters, keyed by tenant name ("" = default).
  std::map<std::string, TenantCounters> tenant_stats() const;

  /// The admitted-request log (requires options.record_log); clears it.
  std::vector<ServeRequest> TakeRequestLog();

 private:
  struct Pending {
    ServeRequest request;
    std::function<void(ServeReply)> done;
    Deadline deadline;  ///< armed at admission
  };

  void DispatchLoop();
  void ExecuteBatch(std::vector<Pending> batch);
  /// Executes one request against the registry (no queue interaction).
  ServeReply Execute(const ServeRequest& request, const Deadline& deadline);
  /// Picks the queued request admission must shed to make room for an
  /// arrival from `tenant`, or queue_.end() if none is required. Must be
  /// called with mu_ held.
  std::deque<Pending>::iterator ShedVictimLocked(const std::string& tenant);

  ModelRegistry* registry_;
  ServeOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  /// Queued-slot count per tenant (entries removed at zero, so the map
  /// stays bounded by the set of currently queued tenants).
  std::unordered_map<std::string, uint64_t> queued_per_tenant_;
  bool stopping_ = false;
  ServeStats stats_;
  std::map<std::string, TenantCounters> tenant_stats_;
  std::vector<ServeRequest> request_log_;

  std::thread dispatcher_;
};

}  // namespace dspot

#endif  // DSPOT_SERVE_SERVE_ENGINE_H_
