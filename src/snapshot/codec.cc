#include "snapshot/codec.h"

#include <cstring>

namespace dspot {

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutString(const std::string& s) {
  PutU64(s.size());
  PutBytes(s.data(), s.size());
}

void ByteWriter::PutBytes(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + n);
}

Status ByteReader::CorruptAt(const std::string& what) const {
  return Status::DataLoss(context_ + ": offset " + std::to_string(offset_) +
                          ": " + what);
}

Status ByteReader::InvalidAt(const std::string& what) const {
  return Status::InvalidArgument(context_ + ": offset " +
                                 std::to_string(offset_) + ": " + what);
}

StatusOr<uint32_t> ByteReader::GetU32() {
  if (remaining() < 4) {
    return CorruptAt("truncated (need 4 bytes, have " +
                     std::to_string(remaining()) + ")");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[offset_ + i]) << (8 * i);
  }
  offset_ += 4;
  return v;
}

StatusOr<uint64_t> ByteReader::GetU64() {
  if (remaining() < 8) {
    return CorruptAt("truncated (need 8 bytes, have " +
                     std::to_string(remaining()) + ")");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[offset_ + i]) << (8 * i);
  }
  offset_ += 8;
  return v;
}

StatusOr<double> ByteReader::GetDouble() {
  DSPOT_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

StatusOr<std::string> ByteReader::GetString() {
  DSPOT_ASSIGN_OR_RETURN(uint64_t len, GetCount(remaining(), "string length"));
  std::string s(reinterpret_cast<const char*>(data_ + offset_),
                static_cast<size_t>(len));
  offset_ += static_cast<size_t>(len);
  return s;
}

StatusOr<uint64_t> ByteReader::GetCount(uint64_t max, const char* what) {
  const size_t at = offset_;
  DSPOT_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  if (v > max) {
    // Report the offset of the bad count itself, not the position past it.
    return Status::DataLoss(context_ + ": offset " + std::to_string(at) +
                            ": " + what + " " + std::to_string(v) +
                            " exceeds limit " + std::to_string(max));
  }
  return v;
}

uint32_t Crc32(const uint8_t* data, size_t n) {
  // Table-driven CRC-32 (reflected 0xEDB88320), computed once.
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace dspot
