#include "epidemics/skips.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "optimize/levenberg_marquardt.h"
#include "timeseries/metrics.h"
#include "timeseries/stats.h"

namespace dspot {

void SimulateSkipsInto(const SkipsParams& params, std::span<double> out) {
  const size_t n_ticks = out.size();
  const double n = std::max(params.population, 1e-9);
  double s = std::max(n - params.i0, 0.0);
  double i = std::min(params.i0, n);
  double v = 0.0;
  constexpr double kTwoPi = 6.283185307179586;
  const double period = std::max(params.period, 2.0);
  for (size_t t = 0; t < n_ticks; ++t) {
    out[t] = i;
    const double forcing =
        1.0 + params.amplitude *
                  std::sin(kTwoPi * static_cast<double>(t) / period +
                           params.phase);
    const double beta = std::max(params.beta0 * forcing, 0.0);
    const double infect = std::min(beta * (s / n) * i, s);
    const double recover = std::min(params.delta, 1.0) * i;
    const double wane = std::min(params.gamma, 1.0) * v;
    s += wane - infect;
    i += infect - recover;
    v += recover - wane;
    s = std::max(s, 0.0);
    i = std::max(i, 0.0);
    v = std::max(v, 0.0);
  }
}

Series SimulateSkips(const SkipsParams& params, size_t n_ticks) {
  Series out(n_ticks);
  SimulateSkipsInto(params, out.mutable_values());
  return out;
}

StatusOr<SkipsFit> FitSkips(const Series& data) {
  if (data.observed_count() < 16) {
    return Status::InvalidArgument("FitSkips: too few observations");
  }
  const size_t n_ticks = data.size();
  const double peak = std::max(data.MaxValue(), 1.0);

  // Candidate forcing periods: ACF peaks, falling back to a coarse grid.
  std::vector<size_t> candidates = CandidatePeriods(data, n_ticks / 2);
  if (candidates.empty()) {
    for (size_t p : {n_ticks / 2, n_ticks / 4, n_ticks / 8}) {
      if (p >= 4) candidates.push_back(p);
    }
  }
  if (candidates.empty()) {
    candidates.push_back(std::max<size_t>(n_ticks / 2, 2));
  }

  // One scratch across all (period, start) solves: observed-tick indices,
  // the simulation buffer, and the LM workspace.
  std::vector<size_t> observed;
  for (size_t t = 0; t < n_ticks; ++t) {
    if (data.IsObserved(t)) observed.push_back(t);
  }
  std::vector<double> estimate(n_ticks);
  LmWorkspace lm_workspace;

  SkipsFit best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t period : candidates) {
    auto residual_fn = [&](std::span<const double> p,
                           std::span<double> r) -> Status {
      SkipsParams params;
      params.population = p[0];
      params.beta0 = p[1];
      params.delta = p[2];
      params.gamma = p[3];
      params.amplitude = p[4];
      params.phase = p[5];
      params.i0 = p[6];
      params.period = static_cast<double>(period);
      SimulateSkipsInto(params, estimate);
      for (size_t k = 0; k < observed.size(); ++k) {
        const size_t t = observed[k];
        r[k] = estimate[t] - data[t];
      }
      return Status::Ok();
    };
    Bounds bounds;
    bounds.lower = {peak * 1.05, 1e-6, 1e-6, 1e-6, 0.0, -3.2, 1e-6};
    bounds.upper = {peak * 100.0, 5.0, 1.0, 1.0, 1.0, 3.2, peak};
    const std::vector<std::vector<double>> starts = {
        {peak * 2.0, 0.4, 0.3, 0.1, 0.3, 0.0, 1.0},
        {peak * 4.0, 0.8, 0.6, 0.4, 0.6, 1.5, 1.0},
    };
    for (const auto& init : starts) {
      auto fit_or = LevenbergMarquardt(residual_fn, observed.size(), init,
                                       bounds, LmOptions(), &lm_workspace);
      if (!fit_or.ok()) continue;
      if (fit_or->final_cost < best_cost) {
        best_cost = fit_or->final_cost;
        const auto& p = fit_or->params;
        best.params = {p[0], p[1], p[2],
                       p[3], p[4], static_cast<double>(period),
                       p[5], p[6]};
      }
    }
  }
  if (!std::isfinite(best_cost)) {
    return Status::NumericalError("FitSkips: all starts failed");
  }
  SimulateSkipsInto(best.params, estimate);
  best.rmse = Rmse(std::span<const double>(data.values()),
                   std::span<const double>(estimate));
  return best;
}

}  // namespace dspot
