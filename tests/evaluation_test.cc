// Tests for src/core/evaluation: fit/forecast scoring and the train/test
// harness (including the streaming RefitGlobalSequence path).

#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluation.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

TEST(EvaluateFit, PerfectFit) {
  Series a(std::vector<double>{1, 5, 3, 8});
  FitQuality q = EvaluateFit(a, a);
  EXPECT_DOUBLE_EQ(q.rmse, 0.0);
  EXPECT_DOUBLE_EQ(q.mae, 0.0);
  EXPECT_DOUBLE_EQ(q.normalized_rmse, 0.0);
  EXPECT_DOUBLE_EQ(q.r_squared, 1.0);
}

TEST(EvaluateFit, KnownErrors) {
  Series a(std::vector<double>{0, 0, 0, 0});
  Series e(std::vector<double>{2, -2, 2, -2});
  FitQuality q = EvaluateFit(a, e);
  EXPECT_DOUBLE_EQ(q.rmse, 2.0);
  EXPECT_DOUBLE_EQ(q.mae, 2.0);
}

TEST(EvaluateForecast, HorizonBuckets) {
  Series actual(std::vector<double>{0, 0, 0, 0, 0, 0});
  Series forecast(std::vector<double>{1, 1, 2, 2, 4, 4});
  ForecastQuality q = EvaluateForecast(actual, forecast, /*bucket=*/2);
  ASSERT_EQ(q.error_by_horizon.size(), 3u);
  EXPECT_DOUBLE_EQ(q.error_by_horizon[0], 1.0);
  EXPECT_DOUBLE_EQ(q.error_by_horizon[1], 2.0);
  EXPECT_DOUBLE_EQ(q.error_by_horizon[2], 4.0);
  EXPECT_DOUBLE_EQ(q.mae, (1 + 1 + 2 + 2 + 4 + 4) / 6.0);
}

TEST(EvaluateForecast, SkipsMissing) {
  Series actual(std::vector<double>{0, kMissingValue});
  Series forecast(std::vector<double>{1, 100});
  ForecastQuality q = EvaluateForecast(actual, forecast, 2);
  EXPECT_DOUBLE_EQ(q.rmse, 1.0);
}

TEST(EvaluateForecast, ZeroBucketClampsToOne) {
  Series actual(std::vector<double>{0, 0, 0});
  Series forecast(std::vector<double>{1, 2, 3});
  ForecastQuality q = EvaluateForecast(actual, forecast, /*bucket=*/0);
  EXPECT_EQ(q.horizon_bucket, 1u);
  ASSERT_EQ(q.error_by_horizon.size(), 3u);
  EXPECT_DOUBLE_EQ(q.error_by_horizon[0], 1.0);
  EXPECT_DOUBLE_EQ(q.error_by_horizon[2], 3.0);
}

TEST(EvaluateForecast, LongerForecastIsTruncated) {
  // Only the overlapping prefix is scored; the forecast's tail past the
  // held-out data contributes nothing.
  Series actual(std::vector<double>{0, 0, 0, 0});
  Series forecast(std::vector<double>{1, 1, 1, 1, 999, 999, 999, 999});
  ForecastQuality q = EvaluateForecast(actual, forecast, /*bucket=*/2);
  ASSERT_EQ(q.error_by_horizon.size(), 2u);
  EXPECT_DOUBLE_EQ(q.error_by_horizon[0], 1.0);
  EXPECT_DOUBLE_EQ(q.error_by_horizon[1], 1.0);
  EXPECT_DOUBLE_EQ(q.mae, 1.0);
  EXPECT_DOUBLE_EQ(q.rmse, 1.0);
}

TEST(EvaluateForecast, PartialLastBucketAveragesItsOwnTicks) {
  // 5 ticks with bucket=2: the last bucket holds a single tick and
  // averages over it alone (not over a phantom full-width bucket).
  Series actual(std::vector<double>{0, 0, 0, 0, 0});
  Series forecast(std::vector<double>{1, 1, 2, 2, 7});
  ForecastQuality q = EvaluateForecast(actual, forecast, /*bucket=*/2);
  ASSERT_EQ(q.error_by_horizon.size(), 3u);
  EXPECT_DOUBLE_EQ(q.error_by_horizon[2], 7.0);
}

TEST(EvaluateForecast, EmptyBucketIsMissingNotZero) {
  // Regression: a bucket whose every tick is missing used to report 0.0 —
  // indistinguishable from a perfect forecast. It must be missing.
  Series actual(std::vector<double>{0, 0, kMissingValue, kMissingValue});
  Series forecast(std::vector<double>{1, 1, 5, 5});
  ForecastQuality q = EvaluateForecast(actual, forecast, /*bucket=*/2);
  ASSERT_EQ(q.error_by_horizon.size(), 2u);
  EXPECT_DOUBLE_EQ(q.error_by_horizon[0], 1.0);
  EXPECT_TRUE(IsMissing(q.error_by_horizon[1]));
}

class TrainTestHarness : public ::testing::Test {
 protected:
  static Series MakeData(uint64_t seed = 33) {
    GeneratorConfig config = GoogleTrendsConfig(seed);
    config.n_ticks = 416;
    config.num_locations = 5;
    config.num_outlier_locations = 0;
    auto s = GenerateGlobalSequence(GrammyScenario(), config);
    EXPECT_TRUE(s.ok());
    return *s;
  }
};

TEST_F(TrainTestHarness, EndToEnd) {
  const Series full = MakeData();
  auto result = TrainAndForecast(full, 312);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->forecast.size(), full.size() - 312);
  // The event-aware forecast should beat the 20%-of-range bar.
  const double range = full.MaxValue() - full.MinValue();
  EXPECT_LT(result->test_quality.rmse, 0.2 * range);
  EXPECT_GT(result->train_quality.r_squared, 0.5);
  EXPECT_FALSE(result->fit.shocks.empty());
}

TEST_F(TrainTestHarness, RejectsBadSplit) {
  const Series full = MakeData();
  EXPECT_FALSE(TrainAndForecast(full, 4).ok());
  EXPECT_FALSE(TrainAndForecast(full, full.size()).ok());
}

TEST(StreamingRefit, WarmRefitTracksExtendedData) {
  GeneratorConfig config = GoogleTrendsConfig(11);
  config.n_ticks = 416;
  config.num_locations = 5;
  config.num_outlier_locations = 0;
  auto full_or = GenerateGlobalSequence(GrammyScenario(), config);
  ASSERT_TRUE(full_or.ok());
  const Series full = *full_or;
  const Series prefix = full.Slice(0, 312);

  auto cold = FitGlobalSequence(prefix, 0, 1);
  ASSERT_TRUE(cold.ok());
  auto warm = RefitGlobalSequence(full, 0, 1, *cold);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->estimate.size(), full.size());
  // The refit tracks the full sequence about as well as a cold fit would.
  const double range = full.MaxValue() - full.MinValue();
  EXPECT_LT(warm->rmse, 0.15 * range);
  // A recurring event survives the refit, with its occurrence vector
  // extended over the appended range (the exact period may be a multiple
  // of the true one when occurrence strengths are very uneven, so only
  // cyclicity and the extension are required here).
  bool cyclic = false;
  for (const Shock& s : warm->shocks) {
    if (s.IsCyclic()) {
      cyclic = true;
      EXPECT_EQ(s.global_strengths.size(), s.NumOccurrences(full.size()));
    }
  }
  EXPECT_TRUE(cyclic);
}

TEST(StreamingRefit, RejectsShrunkData) {
  GeneratorConfig config = GoogleTrendsConfig(11);
  config.n_ticks = 260;
  config.num_locations = 4;
  config.num_outlier_locations = 0;
  auto full = GenerateGlobalSequence(GrammyScenario(), config);
  ASSERT_TRUE(full.ok());
  auto fit = FitGlobalSequence(*full, 0, 1);
  ASSERT_TRUE(fit.ok());
  EXPECT_FALSE(RefitGlobalSequence(full->Slice(0, 100), 0, 1, *fit).ok());
}

}  // namespace
}  // namespace dspot
