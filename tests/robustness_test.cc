// Failure-injection and degenerate-input robustness: the fitter and its
// substrates must return clean errors or sane fits — never crash, hang or
// emit non-finite values — on hostile inputs.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "baselines/ar.h"
#include "baselines/tbats.h"
#include "core/dspot.h"
#include "core/global_fit.h"
#include "common/random.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "epidemics/sir_family.h"
#include "guard/fault_injector.h"
#include "guard/guard.h"
#include "snapshot/snapshot.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

Series ConstantSeries(size_t n, double v) {
  Series s(n);
  for (size_t t = 0; t < n; ++t) s[t] = v;
  return s;
}

TEST(Robustness, ConstantSeriesFitsWithoutEvents) {
  auto fit = FitGlobalSequence(ConstantSeries(128, 25.0), 0, 1);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_TRUE(fit->shocks.empty());
  EXPECT_LT(fit->rmse, 2.0);
  for (size_t t = 0; t < fit->estimate.size(); ++t) {
    ASSERT_TRUE(std::isfinite(fit->estimate[t]));
  }
}

TEST(Robustness, AllZeroSeries) {
  auto fit = FitGlobalSequence(ConstantSeries(96, 0.0), 0, 1);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_LT(fit->rmse, 1.0);
}

TEST(Robustness, MostlyMissingSeriesRejectedOrFit) {
  Series s(100);
  for (size_t t = 0; t < 100; ++t) s[t] = kMissingValue;
  // 10 observed points: below the fitter's floor -> clean error.
  for (size_t t = 0; t < 10; ++t) s[t * 10] = 5.0;
  auto fit = FitGlobalSequence(s, 0, 1);
  EXPECT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), StatusCode::kInvalidArgument);
}

TEST(Robustness, HalfMissingStillFits) {
  GeneratorConfig config = GoogleTrendsConfig(3);
  config.n_ticks = 260;
  config.num_locations = 4;
  config.num_outlier_locations = 0;
  config.missing_rate = 0.5;
  auto data = GenerateGlobalSequence(GrammyScenario(), config);
  ASSERT_TRUE(data.ok());
  auto fit = FitGlobalSequence(*data, 0, 1);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  for (size_t t = 0; t < fit->estimate.size(); ++t) {
    ASSERT_TRUE(std::isfinite(fit->estimate[t]));
  }
}

TEST(Robustness, SingleExtremeOutlierDoesNotPoisonFit) {
  Series s = ConstantSeries(200, 10.0);
  s[77] = 1e5;  // a data glitch, not an event the base should absorb
  auto fit = FitGlobalSequence(s, 0, 1);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  // Away from the glitch, the fit stays at the signal's order of
  // magnitude — not dragged toward the 1e5 outlier (N >= peak forces the
  // dynamics to a huge population, so some level distortion is expected).
  double err = 0.0;
  size_t count = 0;
  for (size_t t = 0; t < 60; ++t) {
    err += std::fabs(fit->estimate[t] - 10.0);
    ++count;
  }
  EXPECT_LT(err / static_cast<double>(count), 50.0);
}

TEST(Robustness, TinyMagnitudeSeries) {
  Random rng(5);
  Series s(128);
  for (size_t t = 0; t < s.size(); ++t) {
    s[t] = 1e-4 * (1.0 + 0.1 * rng.Gaussian());
  }
  auto fit = FitGlobalSequence(s, 0, 1);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_TRUE(std::isfinite(fit->rmse));
}

TEST(Robustness, HugeMagnitudeSeries) {
  Random rng(6);
  Series s(128);
  for (size_t t = 0; t < s.size(); ++t) {
    s[t] = 1e8 * (1.0 + 0.1 * rng.Gaussian());
  }
  auto fit = FitGlobalSequence(s, 0, 1);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_TRUE(std::isfinite(fit->rmse));
  EXPECT_LT(fit->rmse, 1e8);
}

TEST(Robustness, PureNoiseFindsFewOrNoEvents) {
  Random rng(8);
  Series s(312);
  for (size_t t = 0; t < s.size(); ++t) {
    s[t] = std::max(20.0 + rng.Gaussian(0.0, 4.0), 0.0);
  }
  auto fit = FitGlobalSequence(s, 0, 1);
  ASSERT_TRUE(fit.ok());
  // White noise admits no justified events (allow at most one marginal
  // false positive across the whole sequence).
  EXPECT_LE(fit->shocks.size(), 1u);
}

TEST(Robustness, BaselinesHandleConstantInput) {
  const Series s = ConstantSeries(120, 5.0);
  EXPECT_TRUE(ArModel::Fit(s, 4).ok());
  auto sirs = FitSirs(s);
  ASSERT_TRUE(sirs.ok());
  EXPECT_TRUE(std::isfinite(sirs->info.rmse));
}

TEST(Robustness, TbatsConstantInput) {
  TbatsConfig config;
  config.period = 12;
  auto model = TbatsModel::Fit(ConstantSeries(120, 5.0), config);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  Series f = model->Forecast(ConstantSeries(120, 5.0), 12);
  for (size_t t = 0; t < f.size(); ++t) {
    EXPECT_NEAR(f[t], 5.0, 1.0);
  }
}

TEST(Robustness, ForecastHorizonZero) {
  ModelParamSet params;
  params.num_keywords = 1;
  params.num_locations = 1;
  params.num_ticks = 64;
  params.global.resize(1);
  auto fc = ForecastGlobal(params, 0, 0);
  ASSERT_TRUE(fc.ok());
  EXPECT_EQ(fc->size(), 0u);
}

TEST(Robustness, TensorWithOneTick) {
  // Degenerate duration: generation refuses (< 8 ticks).
  GeneratorConfig config;
  config.n_ticks = 4;
  config.num_locations = 2;
  EXPECT_FALSE(GenerateTensor({GrammyScenario()}, config).ok());
}

TEST(Robustness, FitDspotSingleOnShortButValidSeries) {
  GeneratorConfig config = GoogleTrendsConfig(4);
  config.n_ticks = 64;
  config.num_locations = 3;
  config.num_outlier_locations = 0;
  KeywordScenario sc = GrammyScenario();
  sc.shocks[0].period = 26;
  sc.shocks[0].start = 6;
  auto data = GenerateGlobalSequence(sc, config);
  ASSERT_TRUE(data.ok());
  auto fit = FitDspotSingle(*data);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
}

// ---------------------------------------------------------------------------
// Guards and fault injection across the full pipeline

/// A 2-keyword, 3-location tensor small enough that the fault-injection
/// matrix below stays cheap.
ActivityTensor SmallTensor() {
  GeneratorConfig config = GoogleTrendsConfig(7);
  config.n_ticks = 104;
  config.num_locations = 3;
  config.num_outlier_locations = 0;
  auto generated = GenerateTensor({GrammyScenario(), EbolaScenario()}, config);
  EXPECT_TRUE(generated.ok()) << generated.status().ToString();
  return generated->tensor;
}

/// Bit-identical model comparison (not merely "close"): the pipeline
/// promises the same floating-point sequence at any thread count and under
/// an armed-but-silent fault injector.
void ExpectSameModel(const DspotResult& a, const DspotResult& b) {
  ASSERT_EQ(a.params.global.size(), b.params.global.size());
  for (size_t i = 0; i < a.params.global.size(); ++i) {
    const KeywordGlobalParams& ga = a.params.global[i];
    const KeywordGlobalParams& gb = b.params.global[i];
    EXPECT_EQ(ga.population, gb.population) << "keyword " << i;
    EXPECT_EQ(ga.beta, gb.beta) << "keyword " << i;
    EXPECT_EQ(ga.delta, gb.delta) << "keyword " << i;
    EXPECT_EQ(ga.gamma, gb.gamma) << "keyword " << i;
    EXPECT_EQ(ga.i0, gb.i0) << "keyword " << i;
    EXPECT_EQ(ga.growth_rate, gb.growth_rate) << "keyword " << i;
    EXPECT_EQ(ga.growth_start, gb.growth_start) << "keyword " << i;
  }
  ASSERT_EQ(a.params.shocks.size(), b.params.shocks.size());
  for (size_t i = 0; i < a.params.shocks.size(); ++i) {
    EXPECT_EQ(a.params.shocks[i].ToString(), b.params.shocks[i].ToString());
  }
  EXPECT_EQ(a.params.base_local.data(), b.params.base_local.data());
  EXPECT_EQ(a.params.growth_local.data(), b.params.growth_local.data());
  EXPECT_EQ(a.global_rmse, b.global_rmse);
  EXPECT_EQ(a.total_cost_bits, b.total_cost_bits);
}

TEST(Robustness, GuardsInactiveFitDspotBitIdenticalAcrossThreads) {
  const ActivityTensor tensor = SmallTensor();
  DspotOptions serial;
  serial.num_threads = 1;
  DspotOptions wide;
  wide.num_threads = 8;
  auto a = FitDspot(tensor, serial);
  auto b = FitDspot(tensor, wide);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(a->AllKeywordsOk());
  EXPECT_FALSE(a->health.interrupted());
  ExpectSameModel(*a, *b);
}

TEST(Robustness, ArmedButSilentInjectorIsBitIdentical) {
  const ActivityTensor tensor = SmallTensor();
  DspotOptions options;
  options.num_threads = 1;
  auto baseline = FitDspot(tensor, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  // rate 0: every guard/fault probe runs (the armed gate is open) but no
  // fault ever fires — the extra checks must not perturb the numerics.
  FaultInjector::Instance().Arm(/*seed=*/11, /*rate=*/0.0);
  auto probed = FitDspot(tensor, options);
  FaultInjector::Instance().Disarm();
  ASSERT_TRUE(probed.ok()) << probed.status().ToString();
  ExpectSameModel(*baseline, *probed);
}

TEST(Robustness, TimeBudgetReturnsPartialFitAsOk) {
  // Big enough that a full serial fit takes far longer than the budget.
  GeneratorConfig config = GoogleTrendsConfig(2);
  config.n_ticks = 260;
  config.num_locations = 4;
  auto generated = GenerateTensor(TrendingKeywordSuite(), config);
  ASSERT_TRUE(generated.ok());
  DspotOptions options;
  options.num_threads = 1;
  options.time_budget_ms = 50.0;
  const auto t0 = std::chrono::steady_clock::now();
  auto fit = FitDspot(generated->tensor, options);
  const double elapsed = ElapsedMs(t0);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_EQ(fit->health.termination, FitTermination::kDeadlineExceeded);
  EXPECT_TRUE(fit->health.interrupted());
  // Checks sit at solver-iteration granularity, so allow generous
  // scheduler/sanitizer slack over the nominal 2x budget.
  EXPECT_LT(elapsed, 1000.0);
  // The partial model is structurally complete and usable.
  EXPECT_EQ(fit->params.global.size(), generated->tensor.num_keywords());
  for (const Series& estimate : fit->global_estimates) {
    for (size_t t = 0; t < estimate.size(); ++t) {
      EXPECT_TRUE(std::isfinite(estimate[t]));
    }
  }
}

TEST(Robustness, PreCancelledTokenAbortsFitDspot) {
  const ActivityTensor tensor = SmallTensor();
  DspotOptions options;
  options.cancel = CancellationToken::Cancellable();
  options.cancel.Cancel();
  auto fit = FitDspot(tensor, options);
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), StatusCode::kCancelled);
}

TEST(Robustness, SkipAndReportKeepsGoodKeywords) {
  // Keyword 0 is healthy; keyword 1 has too few observations to fit.
  ActivityTensor tensor(2, 1, 96);
  for (size_t t = 0; t < 96; ++t) {
    tensor.at(0, 0, t) = 20.0 + 5.0 * std::sin(static_cast<double>(t) / 9.0);
    tensor.at(1, 0, t) = kMissingValue;
  }
  for (size_t t = 0; t < 10; ++t) tensor.at(1, 0, t * 9) = 5.0;

  DspotOptions fail_options;  // default policy: one bad keyword sinks all
  EXPECT_FALSE(FitDspot(tensor, fail_options).ok());

  DspotOptions skip_options;
  skip_options.on_keyword_error = KeywordErrorPolicy::kSkipAndReport;
  auto fit = FitDspot(tensor, skip_options);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_FALSE(fit->AllKeywordsOk());
  ASSERT_EQ(fit->keyword_status.size(), 2u);
  EXPECT_TRUE(fit->keyword_status[0].ok());
  EXPECT_EQ(fit->keyword_status[1].code(), StatusCode::kInvalidArgument);
  // The healthy keyword's fit is real, not a placeholder.
  ASSERT_EQ(fit->global_estimates.size(), 2u);
  EXPECT_LT(fit->global_rmse[0], 10.0);
  for (size_t t = 0; t < fit->global_estimates[0].size(); ++t) {
    EXPECT_TRUE(std::isfinite(fit->global_estimates[0][t]));
  }
}

TEST(Robustness, FaultInjectionMatrixFailsCleanly) {
  const ActivityTensor tensor = SmallTensor();
  const FaultSite sites[] = {FaultSite::kNanAtResidual,
                             FaultSite::kSolverFailure,
                             FaultSite::kAllocation,
                             FaultSite::kDeadlineExpiry};
  for (FaultSite site : sites) {
    for (size_t threads : {size_t{1}, size_t{8}}) {
      SCOPED_TRACE(std::string(FaultSiteName(site)) + " x " +
                   std::to_string(threads) + " threads");
      // The CI sweep varies DSPOT_FAULT_SEED to shift which draws fire;
      // locally the fallback keeps the run reproducible.
      FaultInjector::Instance().ArmSite(
          site,
          FaultInjector::SeedFromEnv(0xD590 + static_cast<uint64_t>(site)),
          /*rate=*/0.02);
      DspotOptions options;
      options.num_threads = threads;
      options.on_keyword_error = KeywordErrorPolicy::kSkipAndReport;
      auto fit = FitDspot(tensor, options);
      FaultInjector::Instance().Disarm();
      if (fit.ok()) {
        // A fit that survives injection must be fully finite.
        for (const Series& estimate : fit->global_estimates) {
          for (size_t t = 0; t < estimate.size(); ++t) {
            ASSERT_TRUE(std::isfinite(estimate[t]));
          }
        }
        EXPECT_TRUE(std::isfinite(fit->total_cost_bits));
      } else {
        // Failing is acceptable — but only with a clean, descriptive
        // Status, never a crash, hang, or poisoned output.
        EXPECT_FALSE(fit.status().message().empty());
      }
    }
  }
}

// --- Snapshot corruption: a hostile or damaged model file must produce a
// clean, located error (InvalidArgument for not-a-snapshot / unsupported
// version, DataLoss for corruption), and never a crash or a silently
// wrong model. ---

std::string SnapshotFuzzPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path,
                   const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// A tiny hand-built snapshot (no fitting) for corruption tests.
ModelSnapshot TinySnapshot() {
  ModelSnapshot snapshot;
  ModelParamSet& params = snapshot.params;
  params.num_keywords = 2;
  params.num_locations = 1;
  params.num_ticks = 64;
  params.global.resize(2);
  params.global[0].population = 120.0;
  params.global[1].growth_start = kNpos;
  Shock shock;
  shock.keyword = 1;
  shock.start = 17;
  shock.width = 2;
  shock.base_strength = 0.4;
  params.shocks.push_back(shock);
  snapshot.keywords = {"alpha", "beta"};
  snapshot.locations = {"global"};
  snapshot.global_rmse = {1.5, 2.5};
  snapshot.total_cost_bits = 321.0;
  return snapshot;
}

TEST(SnapshotRobustness, TruncatedBinaryIsCleanDataLoss) {
  const std::string path = SnapshotFuzzPath("trunc.snap");
  ASSERT_TRUE(SaveSnapshot(TinySnapshot(), path).ok());
  const std::vector<uint8_t> bytes = ReadAllBytes(path);
  ASSERT_GT(bytes.size(), 24u);
  // Every strict prefix must fail cleanly — never crash, never return a
  // partially decoded model.
  for (size_t len : {bytes.size() - 1, bytes.size() - 5, bytes.size() / 2,
                     size_t{21}, size_t{13}, size_t{9}}) {
    WriteAllBytes(path, std::vector<uint8_t>(bytes.begin(),
                                             bytes.begin() + len));
    auto loaded = LoadSnapshot(path);
    ASSERT_FALSE(loaded.ok()) << "prefix " << len;
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << "prefix " << len << ": " << loaded.status().ToString();
    // The error names the file, so an operator can find the bad artifact.
    EXPECT_NE(loaded.status().message().find("trunc.snap"),
              std::string::npos);
  }
}

TEST(SnapshotRobustness, FlippedPayloadByteFailsChecksumWithOffset) {
  const std::string path = SnapshotFuzzPath("flip.snap");
  ASSERT_TRUE(SaveSnapshot(TinySnapshot(), path).ok());
  std::vector<uint8_t> bytes = ReadAllBytes(path);
  bytes[bytes.size() / 2] ^= 0x40;  // inside the payload
  WriteAllBytes(path, bytes);
  auto loaded = LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("offset"), std::string::npos)
      << loaded.status().ToString();
}

TEST(SnapshotRobustness, BadMagicIsInvalidArgumentNotDataLoss) {
  const std::string path = SnapshotFuzzPath("magic.snap");
  ASSERT_TRUE(SaveSnapshot(TinySnapshot(), path).ok());
  std::vector<uint8_t> bytes = ReadAllBytes(path);
  bytes[0] = 'X';
  WriteAllBytes(path, bytes);
  auto loaded = LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotRobustness, FutureBinaryVersionIsInvalidArgumentNamingBoth) {
  const std::string path = SnapshotFuzzPath("future.snap");
  ASSERT_TRUE(SaveSnapshot(TinySnapshot(), path).ok());
  std::vector<uint8_t> bytes = ReadAllBytes(path);
  // The u32 version sits right after the 8-byte magic (little-endian).
  bytes[8] = 0x2A;
  WriteAllBytes(path, bytes);
  auto loaded = LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("42"), std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find(
                std::to_string(kSnapshotVersion)),
            std::string::npos);
}

TEST(SnapshotRobustness, JsonCorruptionIsCleanError) {
  const std::string path = SnapshotFuzzPath("fuzz.json");
  ASSERT_TRUE(
      SaveSnapshot(TinySnapshot(), path, SnapshotFormat::kJson).ok());
  const std::vector<uint8_t> pristine = ReadAllBytes(path);

  // Truncations: parser errors, version gate, or checksum — all clean.
  // (-2, not -1: the file ends "}\n", and losing only the newline still
  // leaves a complete object.)
  for (size_t len : {pristine.size() - 2, pristine.size() / 2, size_t{2}}) {
    WriteAllBytes(path, std::vector<uint8_t>(pristine.begin(),
                                             pristine.begin() + len));
    auto loaded = LoadSnapshot(path);
    ASSERT_FALSE(loaded.ok()) << "prefix " << len;
    const StatusCode code = loaded.status().code();
    EXPECT_TRUE(code == StatusCode::kDataLoss ||
                code == StatusCode::kInvalidArgument)
        << loaded.status().ToString();
  }

  // A tampered model value parses fine but fails the payload checksum.
  std::string text(pristine.begin(), pristine.end());
  const size_t pos = text.find("\"total_cost_bits\": 321");
  ASSERT_NE(pos, std::string::npos) << text;
  text.replace(pos, std::string("\"total_cost_bits\": 321").size(),
               "\"total_cost_bits\": 322");
  WriteAllBytes(path, std::vector<uint8_t>(text.begin(), text.end()));
  auto tampered = LoadSnapshot(path);
  ASSERT_FALSE(tampered.ok());
  EXPECT_EQ(tampered.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(tampered.status().message().find("checksum"), std::string::npos)
      << tampered.status().ToString();
}

TEST(SnapshotRobustness, RandomByteFlipsNeverCrash) {
  const std::string bin_path = SnapshotFuzzPath("fuzzbin.snap");
  const std::string json_path = SnapshotFuzzPath("fuzzjson.json");
  ASSERT_TRUE(SaveSnapshot(TinySnapshot(), bin_path).ok());
  ASSERT_TRUE(
      SaveSnapshot(TinySnapshot(), json_path, SnapshotFormat::kJson).ok());
  const std::vector<uint8_t> bin = ReadAllBytes(bin_path);
  const std::vector<uint8_t> json = ReadAllBytes(json_path);
  Random rng(20260805);
  for (int trial = 0; trial < 400; ++trial) {
    const bool use_json = trial % 2 == 1;
    std::vector<uint8_t> bytes = use_json ? json : bin;
    // 1-3 random flips anywhere in the file.
    const int flips = 1 + static_cast<int>(rng.UniformInt(0, 2));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
      bytes[pos] ^= static_cast<uint8_t>(1u << rng.UniformInt(0, 7));
    }
    const std::string& path = use_json ? json_path : bin_path;
    WriteAllBytes(path, bytes);
    auto loaded = LoadSnapshot(path);
    if (!loaded.ok()) {
      // Any failure must be a located, descriptive error.
      EXPECT_FALSE(loaded.status().message().empty());
      const StatusCode code = loaded.status().code();
      EXPECT_TRUE(code == StatusCode::kDataLoss ||
                  code == StatusCode::kInvalidArgument)
          << loaded.status().ToString();
    }
    // A successful load is possible only when the flips were semantically
    // inert (JSON whitespace); either way, no crash and no partial model.
  }
}

}  // namespace
}  // namespace dspot
