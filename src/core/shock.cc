#include "core/shock.h"

#include <algorithm>
#include <sstream>

namespace dspot {

size_t Shock::NumOccurrences(size_t n_ticks) const {
  if (start >= n_ticks) {
    return 0;
  }
  if (!IsCyclic()) {
    return 1;
  }
  return (n_ticks - 1 - start) / period + 1;
}

size_t Shock::OccurrenceIndexAt(size_t t) const {
  if (t < start) {
    return kNpos;
  }
  const size_t offset = t - start;
  if (!IsCyclic()) {
    return offset < width ? 0 : kNpos;
  }
  const size_t m = offset / period;
  return (offset - m * period) < width ? m : kNpos;
}

double Shock::MeanGlobalStrength() const {
  if (global_strengths.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : global_strengths) {
    sum += s;
  }
  return sum / static_cast<double>(global_strengths.size());
}

double Shock::GlobalStrengthAt(size_t t) const {
  const size_t m = OccurrenceIndexAt(t);
  if (m == kNpos) {
    return 0.0;
  }
  if (m < global_strengths.size()) {
    return global_strengths[m];
  }
  return base_strength;
}

size_t Shock::DeviatingOccurrences() const {
  size_t count = 0;
  for (double s : global_strengths) {
    if (s != base_strength) ++count;
  }
  return count;
}

double Shock::LocalStrengthAt(size_t t, size_t location) const {
  const size_t m = OccurrenceIndexAt(t);
  if (m == kNpos) {
    return 0.0;
  }
  if (local_strengths.empty()) {
    // LocalFit has not run: fall back to the global strength.
    return GlobalStrengthAt(t);
  }
  if (location >= local_strengths.cols()) {
    return 0.0;
  }
  if (m < local_strengths.rows()) {
    return local_strengths(m, location);
  }
  // Beyond the fitted range (forecasting): this location's mean strength.
  double sum = 0.0;
  for (size_t r = 0; r < local_strengths.rows(); ++r) {
    sum += local_strengths(r, location);
  }
  return local_strengths.rows() == 0
             ? 0.0
             : sum / static_cast<double>(local_strengths.rows());
}

std::string Shock::ToString() const {
  std::ostringstream os;
  os << "shock(kw=" << keyword << ", t_s=" << start << ", t_w=" << width;
  if (IsCyclic()) {
    os << ", t_p=" << period;
  } else {
    os << ", t_p=inf";
  }
  os << ", occurrences=" << global_strengths.size() << ")";
  return os.str();
}

std::vector<double> BuildGlobalEpsilon(const std::vector<Shock>& shocks,
                                       size_t keyword, size_t n_ticks) {
  std::vector<double> eps;
  BuildGlobalEpsilonInto(shocks, keyword, n_ticks, &eps);
  return eps;
}

std::vector<double> BuildLocalEpsilon(const std::vector<Shock>& shocks,
                                      size_t keyword, size_t location,
                                      size_t n_ticks) {
  std::vector<double> eps;
  BuildLocalEpsilonInto(shocks, keyword, location, n_ticks, &eps);
  return eps;
}

namespace {

/// Ticks covered by one occurrence: a cyclic shock's occurrence window is
/// capped at the period, because OccurrenceIndexAt attributes each tick to
/// the most recent occurrence (so with width >= period the next occurrence
/// owns the overlap). This is what makes the windowed sweep below add at
/// most one contribution per (tick, shock), matching the per-tick scan
/// exactly.
size_t OccurrenceWindow(const Shock& shock) {
  return shock.IsCyclic() ? std::min(shock.width, shock.period) : shock.width;
}

}  // namespace

void BuildGlobalEpsilonInto(const std::vector<Shock>& shocks, size_t keyword,
                            size_t n_ticks, std::vector<double>* out) {
  out->assign(n_ticks, 1.0);
  std::vector<double>& eps = *out;
  for (const Shock& shock : shocks) {
    if (shock.keyword != keyword) continue;
    const size_t occurrences = shock.NumOccurrences(n_ticks);
    const size_t window = OccurrenceWindow(shock);
    for (size_t m = 0; m < occurrences; ++m) {
      const double strength = m < shock.global_strengths.size()
                                  ? shock.global_strengths[m]
                                  : shock.base_strength;
      // Adding 0.0 is an exact no-op, so skipping keeps bit-identity.
      if (strength == 0.0) continue;
      const size_t begin = shock.start + m * shock.period;
      const size_t end = std::min(begin + window, n_ticks);
      for (size_t t = begin; t < end; ++t) {
        eps[t] += strength;
      }
    }
  }
}

void BuildLocalEpsilonInto(const std::vector<Shock>& shocks, size_t keyword,
                           size_t location, size_t n_ticks,
                           std::vector<double>* out) {
  out->assign(n_ticks, 1.0);
  std::vector<double>& eps = *out;
  for (const Shock& shock : shocks) {
    if (shock.keyword != keyword) continue;
    const size_t occurrences = shock.NumOccurrences(n_ticks);
    const size_t window = OccurrenceWindow(shock);
    const Matrix& local = shock.local_strengths;
    for (size_t m = 0; m < occurrences; ++m) {
      // Mirrors Shock::LocalStrengthAt branch for branch.
      double strength;
      if (local.empty()) {
        strength = m < shock.global_strengths.size()
                       ? shock.global_strengths[m]
                       : shock.base_strength;
      } else if (location >= local.cols()) {
        strength = 0.0;
      } else if (m < local.rows()) {
        strength = local(m, location);
      } else {
        double sum = 0.0;
        for (size_t r = 0; r < local.rows(); ++r) {
          sum += local(r, location);
        }
        strength =
            local.rows() == 0 ? 0.0 : sum / static_cast<double>(local.rows());
      }
      if (strength == 0.0) continue;
      const size_t begin = shock.start + m * shock.period;
      const size_t end = std::min(begin + window, n_ticks);
      for (size_t t = begin; t < end; ++t) {
        eps[t] += strength;
      }
    }
  }
}

void AddOccurrenceStrengthsInto(const Shock& shock,
                                std::span<const double> strengths,
                                std::span<double> epsilon) {
  const size_t n_ticks = epsilon.size();
  const size_t occurrences =
      std::min(shock.NumOccurrences(n_ticks), strengths.size());
  const size_t window = OccurrenceWindow(shock);
  for (size_t m = 0; m < occurrences; ++m) {
    const double strength = strengths[m];
    if (strength == 0.0) continue;
    const size_t begin = shock.start + m * shock.period;
    const size_t end = std::min(begin + window, n_ticks);
    for (size_t t = begin; t < end; ++t) {
      epsilon[t] += strength;
    }
  }
}

}  // namespace dspot
