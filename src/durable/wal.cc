#include "durable/wal.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "snapshot/codec.h"

namespace dspot {

namespace {

void PutLe32(std::vector<uint8_t>* out, size_t at, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*out)[at + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void PutLe64(std::vector<uint8_t>* out, size_t at, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*out)[at + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint32_t GetLe32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

uint64_t GetLe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

bool ValidType(uint8_t type) {
  return type >= static_cast<uint8_t>(WalRecordType::kIntern) &&
         type <= static_cast<uint8_t>(WalRecordType::kCheckpointRef);
}

/// Attempts to parse the frame at `data[off..]`. Returns true and fills
/// `*rec` / `*frame_len` iff the frame is structurally valid and its CRC
/// matches. Never reads past `size`.
bool TryParseFrame(const uint8_t* data, size_t size, size_t off,
                   WalRecord* rec, size_t* frame_len) {
  if (off + kWalFrameBytes > size) {
    return false;
  }
  const uint8_t* frame = data + off;
  const uint32_t type_ext = GetLe32(frame + 4);
  const uint8_t type = static_cast<uint8_t>(type_ext & 0xff);
  const size_t ext_len = static_cast<size_t>(type_ext >> 8);
  if (!ValidType(type) || ext_len % 8 != 0 || ext_len > kWalMaxExtBytes) {
    return false;
  }
  const size_t total = kWalFrameBytes + ext_len;
  if (off + total > size) {
    return false;
  }
  const uint32_t stored_crc = GetLe32(frame);
  const uint32_t crc = Crc32(frame + 4, total - 4);
  if (crc != stored_crc) {
    return false;
  }
  rec->type = static_cast<WalRecordType>(type);
  rec->seq = GetLe64(frame + 8);
  rec->a = GetLe64(frame + 16);
  rec->b = GetLe64(frame + 24);
  rec->c = GetLe64(frame + 32);
  rec->name.clear();
  if (ext_len > 0) {
    // The extension is the name zero-padded to 8 bytes; the name stops at
    // the first NUL (names themselves never contain NUL).
    const char* ext = reinterpret_cast<const char*>(frame + kWalFrameBytes);
    size_t name_len = ext_len;
    while (name_len > 0 && ext[name_len - 1] == '\0') {
      --name_len;
    }
    rec->name.assign(ext, name_len);
  }
  *frame_len = total;
  return true;
}

}  // namespace

StatusOr<WalWriter> WalWriter::Open(const std::string& path,
                                    uint64_t next_seq,
                                    const RetryPolicy& retry) {
  StatusOr<DurableFile> file = DurableFile::OpenAppend(path, retry);
  if (!file.ok()) {
    return file.status();
  }
  return WalWriter(std::move(*file), next_seq);
}

Status WalWriter::Append(WalRecordType type, uint64_t a, uint64_t b,
                         uint64_t c, std::string_view name,
                         uint64_t* seq_out) {
  if (!name.empty() && type != WalRecordType::kIntern) {
    return Status::Internal("WalWriter: only kIntern records carry a name");
  }
  if (name.size() > kWalMaxExtBytes - 8) {
    return Status::InvalidArgument(
        "WalWriter: keyword name of " + std::to_string(name.size()) +
        " bytes exceeds the WAL extension cap");
  }
  // Pad so a NUL always terminates the name (a name of exactly ext_len
  // bytes would otherwise be ambiguous with its own padding).
  const size_t ext_len = name.empty() ? 0 : ((name.size() / 8) + 1) * 8;
  const size_t total = kWalFrameBytes + ext_len;
  frame_.assign(total, 0);
  const uint64_t seq = next_seq_;
  PutLe32(&frame_, 4,
          static_cast<uint32_t>(type) |
              (static_cast<uint32_t>(ext_len) << 8));
  PutLe64(&frame_, 8, seq);
  PutLe64(&frame_, 16, a);
  PutLe64(&frame_, 24, b);
  PutLe64(&frame_, 32, c);
  if (!name.empty()) {
    std::memcpy(frame_.data() + kWalFrameBytes, name.data(), name.size());
  }
  PutLe32(&frame_, 0, Crc32(frame_.data() + 4, total - 4));
  DSPOT_RETURN_IF_ERROR(file_.WriteAll(frame_.data(), total));
  ++next_seq_;
  if (seq_out != nullptr) {
    *seq_out = seq;
  }
  DSPOT_COUNT("wal.records", 1);
  DSPOT_COUNT("wal.bytes", total);
  return Status::Ok();
}

StatusOr<WalSegmentScan> ReadWalSegment(const std::string& path,
                                        uint64_t expected_first_seq,
                                        bool allow_torn_tail) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  if (!is && !is.eof()) {
    return Status::IoError("read failed: " + path);
  }
  const std::string bytes = buf.str();
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  const size_t size = bytes.size();

  WalSegmentScan scan;
  uint64_t next_seq = expected_first_seq;
  size_t off = 0;
  while (off < size) {
    WalRecord rec;
    size_t frame_len = 0;
    if (TryParseFrame(data, size, off, &rec, &frame_len)) {
      if (rec.seq != next_seq) {
        return Status::DataLoss(
            path + ": offset " + std::to_string(off) +
            ": record carries sequence " + std::to_string(rec.seq) +
            " where " + std::to_string(next_seq) +
            " was expected — the log has a gap or was spliced");
      }
      scan.records.push_back(std::move(rec));
      ++next_seq;
      off += frame_len;
      scan.valid_bytes = off;
      continue;
    }
    // Invalid frame. Torn tail iff nothing valid follows it — scan ahead
    // at the 8-byte granularity every real frame is aligned to.
    for (size_t probe = off + 8; probe + kWalFrameBytes <= size;
         probe += 8) {
      WalRecord ahead;
      size_t ahead_len = 0;
      if (TryParseFrame(data, size, probe, &ahead, &ahead_len)) {
        return Status::DataLoss(
            path + ": offset " + std::to_string(off) +
            ": corrupt record followed by a valid one at offset " +
            std::to_string(probe) +
            " — mid-log corruption, not a torn tail");
      }
    }
    if (!allow_torn_tail) {
      return Status::DataLoss(
          path + ": offset " + std::to_string(off) +
          ": corrupt record in a non-final WAL segment");
    }
    scan.truncated_bytes = size - off;
    break;
  }
  return scan;
}

}  // namespace dspot
