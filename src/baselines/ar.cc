#include "baselines/ar.h"

#include <algorithm>

#include "linalg/matrix.h"
#include "linalg/solvers.h"

namespace dspot {

StatusOr<ArModel> ArModel::Fit(const Series& data, size_t order) {
  if (order == 0) {
    return Status::InvalidArgument("ArModel::Fit: order must be positive");
  }
  if (data.size() < 2 * order + 2) {
    return Status::InvalidArgument(
        "ArModel::Fit: series too short for requested order");
  }
  const Series filled = data.Interpolated();
  const size_t n = filled.size();
  const size_t rows = n - order;
  // Design matrix: [1, y(t-1), ..., y(t-r)] for t = order..n-1.
  Matrix design(rows, order + 1);
  std::vector<double> target(rows);
  for (size_t t = order; t < n; ++t) {
    const size_t row = t - order;
    design(row, 0) = 1.0;
    for (size_t k = 1; k <= order; ++k) {
      design(row, k) = filled[t - k];
    }
    target[row] = filled[t];
  }
  auto solved = QrLeastSquares(design, target);
  if (!solved.ok()) {
    // Rank deficiency (e.g. constant series): fall back to ridge-style
    // normal equations, which the regularized LDLT always solves.
    Matrix gram;
    design.GramInto(&gram);
    gram.AddToDiagonal(1e-8);
    std::vector<double> rhs(order + 1);
    design.TransposedTimesInto(target, rhs);
    std::vector<double> x(order + 1);
    LdltWorkspace ldlt;
    DSPOT_RETURN_IF_ERROR(RegularizedLdltSolveInto(gram, rhs, x, &ldlt));
    return ArModel(x[0], std::vector<double>(x.begin() + 1, x.end()));
  }
  const std::vector<double>& x = solved.value();
  return ArModel(x[0], std::vector<double>(x.begin() + 1, x.end()));
}

Series ArModel::PredictInSample(const Series& data) const {
  const Series filled = data.Interpolated();
  const size_t n = filled.size();
  const size_t r = order();
  Series out(n);
  for (size_t t = 0; t < n; ++t) {
    if (t < r) {
      out[t] = filled[t];
      continue;
    }
    double pred = intercept_;
    for (size_t k = 1; k <= r; ++k) {
      pred += coefficients_[k - 1] * filled[t - k];
    }
    out[t] = pred;
  }
  return out;
}

Series ArModel::Forecast(const Series& history, size_t horizon) const {
  const Series filled = history.Interpolated();
  const size_t r = order();
  // Rolling window of the r most recent values, newest last.
  std::vector<double> window(r, 0.0);
  for (size_t k = 0; k < r && k < filled.size(); ++k) {
    window[r - 1 - k] = filled[filled.size() - 1 - k];
  }
  Series out(horizon);
  for (size_t h = 0; h < horizon; ++h) {
    double pred = intercept_;
    for (size_t k = 1; k <= r; ++k) {
      pred += coefficients_[k - 1] * window[r - k];
    }
    out[h] = pred;
    window.erase(window.begin());
    window.push_back(pred);
  }
  return out;
}

}  // namespace dspot
