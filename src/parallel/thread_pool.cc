#include "parallel/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace dspot {

namespace {

/// Identifies the worker the current thread belongs to (if any), so
/// Submit can push to the local deque and PopTask can skip self-steals.
struct WorkerBinding {
  ThreadPool* pool = nullptr;
  size_t index = 0;
};
thread_local WorkerBinding tls_binding;

constexpr size_t kNoWorker = static_cast<size_t>(-1);

}  // namespace

size_t EffectiveNumThreads(size_t num_threads) {
  if (num_threads != 0) {
    return std::min(num_threads, ThreadPool::kMaxWorkers);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min<size_t>(hw, ThreadPool::kMaxWorkers);
}

ThreadPool::ThreadPool(size_t num_threads) {
  EnsureWorkers(EffectiveNumThreads(num_threads));
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Empty critical section: a worker that just found its queues empty
    // either has not yet entered wait (and will re-check stop_ under
    // sleep_mu_) or is already parked and gets the notification.
    std::lock_guard<std::mutex> lk(sleep_mu_);
  }
  wake_cv_.notify_all();
  const size_t n = num_workers();
  for (size_t i = 0; i < n; ++i) {
    if (workers_[i]->thread.joinable()) {
      workers_[i]->thread.join();
    }
  }
}

void ThreadPool::EnsureWorkers(size_t n) {
  n = std::min(std::max<size_t>(n, 1), kMaxWorkers);
  if (num_workers() >= n) {
    return;
  }
  std::lock_guard<std::mutex> lk(grow_mu_);
  for (size_t i = num_workers(); i < n; ++i) {
    workers_[i] = std::make_unique<Worker>();
    // Publish the slot before the worker (or any thief) can observe it.
    num_workers_.store(i + 1, std::memory_order_release);
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  pending_.fetch_add(1, std::memory_order_release);
  if (tls_binding.pool == this) {
    Worker& self = *workers_[tls_binding.index];
    std::lock_guard<std::mutex> lk(self.mu);
    self.tasks.push_back(std::move(task));
  } else {
    std::lock_guard<std::mutex> lk(inject_mu_);
    inject_.push_back(std::move(task));
  }
  {
    // Pairs with the sleeper's predicate check; see ~ThreadPool.
    std::lock_guard<std::mutex> lk(sleep_mu_);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::PopTask(size_t self, std::function<void()>* task) {
  if (pending_.load(std::memory_order_acquire) == 0) {
    return false;
  }
  const size_t n = num_workers();
  // Own deque first (bottom = LIFO: the task most recently submitted by
  // this worker, typically the hottest in cache).
  if (self != kNoWorker) {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lk(w.mu);
    if (!w.tasks.empty()) {
      *task = std::move(w.tasks.back());
      w.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  // Shared inject queue (external submissions).
  {
    std::lock_guard<std::mutex> lk(inject_mu_);
    if (!inject_.empty()) {
      *task = std::move(inject_.front());
      inject_.pop_front();
      pending_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  // Steal round-robin, oldest task first (top of the victim's deque).
  const size_t start = (self == kNoWorker) ? 0 : self + 1;
  for (size_t k = 0; k < n; ++k) {
    const size_t victim = (start + k) % n;
    if (victim == self) continue;
    Worker& w = *workers_[victim];
    std::lock_guard<std::mutex> lk(w.mu);
    if (!w.tasks.empty()) {
      *task = std::move(w.tasks.front());
      w.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  return false;
}

bool ThreadPool::RunOneTask() {
  const size_t self =
      (tls_binding.pool == this) ? tls_binding.index : kNoWorker;
  std::function<void()> task;
  if (!PopTask(self, &task)) {
    return false;
  }
  {
    DSPOT_SPAN("pool.task");
    DSPOT_COUNT("pool.tasks_executed", 1);
    task();
  }
  return true;
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_binding = {this, index};
  for (;;) {
    std::function<void()> task;
    if (PopTask(index, &task)) {
      {
        DSPOT_SPAN("pool.task");
        DSPOT_COUNT("pool.tasks_executed", 1);
        task();
      }
      task = nullptr;  // release captures before sleeping
      continue;
    }
    std::unique_lock<std::mutex> lk(sleep_mu_);
    wake_cv_.wait(lk, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

ThreadPool& ThreadPool::Shared(size_t min_workers) {
  // Intentionally leaked: joining workers during static destruction races
  // with other exit-time teardown; parked threads are reaped by process
  // exit instead.
  static ThreadPool* shared = new ThreadPool(1);
  shared->EnsureWorkers(EffectiveNumThreads(min_workers));
  return *shared;
}

TaskGroup::~TaskGroup() { WaitNoThrow(); }

void TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr) {
    if (cancel_.cancelled()) {
      return;  // pending work is dropped once the token fires
    }
    std::exception_ptr error;
    try {
      fn();
    } catch (...) {
      error = std::current_exception();
    }
    if (error) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!first_error_) first_error_ = error;
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    std::exception_ptr error;
    // Checked at dequeue time: tasks that were still queued when the
    // token fired never start, so cancellation drains the backlog
    // immediately instead of running it.
    if (!cancel_.cancelled()) {
      try {
        fn();
      } catch (...) {
        error = std::current_exception();
      }
    }
    std::lock_guard<std::mutex> lk(mu_);
    if (error && !first_error_) first_error_ = error;
    if (--pending_ == 0) cv_.notify_all();
  });
}

void TaskGroup::WaitNoThrow() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (pending_ == 0) return;
    }
    if (pool_ != nullptr && pool_->RunOneTask()) {
      continue;
    }
    // Every queue is empty but tasks of this group are still running on
    // other threads. Park until the group drains; the timeout re-arms the
    // helping loop in case one of those tasks spawns new work that only
    // this thread is free to pick up.
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_for(lk, std::chrono::milliseconds(1),
                 [this] { return pending_ == 0; });
    if (pending_ == 0) return;
  }
}

void TaskGroup::Wait() {
  WaitNoThrow();
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lk(mu_);
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

}  // namespace dspot
