#include "kernels/reduce.h"

#include <cmath>

#include "kernels/dspot_simd.h"

namespace dspot {
namespace kernels {

const char* SimdIsaName() { return simd::kIsaName; }
size_t SimdNumLanes() { return simd::kNumLanes; }

double SumSquares(std::span<const double> v) {
  using simd::VecD;
  const double* x = v.data();
  const size_t n = v.size();
  // Two independent accumulators break the loop-carried add dependency;
  // they are combined in a FIXED order (acc0 + acc1, then the lane order
  // of HorizontalSum, then the scalar tail) — the determinism half of the
  // golden-tolerance policy.
  const size_t step = 2 * simd::kNumLanes;
  const size_t vec_end = n - (n % step);
  VecD acc0 = VecD::Zero();
  VecD acc1 = VecD::Zero();
  for (size_t i = 0; i < vec_end; i += step) {
    const VecD a = VecD::Load(x + i);
    const VecD b = VecD::Load(x + i + simd::kNumLanes);
    acc0 = acc0 + a * a;
    acc1 = acc1 + b * b;
  }
  double total = simd::HorizontalSum(acc0 + acc1);
  for (size_t i = vec_end; i < n; ++i) {
    total += x[i] * x[i];
  }
  return total;
}

void ResidualInto(std::span<const double> estimate,
                  std::span<const double> data, std::span<double> out) {
  using simd::VecD;
  const size_t n = out.size();
  const size_t vec_end = n - (n % simd::kNumLanes);
  for (size_t t = 0; t < vec_end; t += simd::kNumLanes) {
    const VecD r = VecD::Load(estimate.data() + t) - VecD::Load(data.data() + t);
    r.Store(out.data() + t);
  }
  for (size_t t = vec_end; t < n; ++t) {
    out[t] = estimate[t] - data[t];
  }
}

namespace {

/// Shared count/sum pass: r_t = a[t] - e[t] (or a[t] itself when
/// kHasEstimate is false), skipping non-finite residuals. Both public
/// entry points run this exact structure, so the two GaussianCodingCost
/// overloads stay bit-identical to each other.
template <bool kHasEstimate>
MaskedMoments MomentsCore(const double* a, const double* e, size_t n) {
  using simd::VecD;
  const size_t vec_end = n - (n % simd::kNumLanes);
  const VecD one = VecD::Splat(1.0);
  VecD cnt = VecD::Zero();
  VecD sum = VecD::Zero();
  for (size_t t = 0; t < vec_end; t += simd::kNumLanes) {
    const VecD r = kHasEstimate ? VecD::Load(a + t) - VecD::Load(e + t)
                                : VecD::Load(a + t);
    const VecD mask = simd::FiniteMask(r);
    cnt = cnt + simd::Select(mask, one);
    sum = sum + simd::Select(mask, r);
  }
  MaskedMoments out;
  out.count = simd::HorizontalSum(cnt);
  out.sum = simd::HorizontalSum(sum);
  for (size_t t = vec_end; t < n; ++t) {
    const double r = kHasEstimate ? a[t] - e[t] : a[t];
    if (!std::isfinite(r)) continue;
    out.count += 1.0;
    out.sum += r;
  }
  return out;
}

template <bool kHasEstimate>
double SumSqDevCore(const double* a, const double* e, size_t n, double mean) {
  using simd::VecD;
  const size_t vec_end = n - (n % simd::kNumLanes);
  const VecD mu = VecD::Splat(mean);
  VecD acc = VecD::Zero();
  for (size_t t = 0; t < vec_end; t += simd::kNumLanes) {
    const VecD r = kHasEstimate ? VecD::Load(a + t) - VecD::Load(e + t)
                                : VecD::Load(a + t);
    const VecD d = r - mu;
    // Mask on r's finiteness (NaN lanes of d*d are zeroed bitwise); an
    // overflowing (r - mu)^2 with finite r flows through as inf, exactly
    // like the scalar pass.
    acc = acc + simd::Select(simd::FiniteMask(r), d * d);
  }
  double ss = simd::HorizontalSum(acc);
  for (size_t t = vec_end; t < n; ++t) {
    const double r = kHasEstimate ? a[t] - e[t] : a[t];
    if (!std::isfinite(r)) continue;
    const double d = r - mean;
    ss += d * d;
  }
  return ss;
}

}  // namespace

MaskedMoments MaskedResidualMoments(std::span<const double> actual,
                                    std::span<const double> estimate) {
  const size_t n = actual.size() < estimate.size() ? actual.size()
                                                   : estimate.size();
  return MomentsCore<true>(actual.data(), estimate.data(), n);
}

double MaskedResidualSumSqDev(std::span<const double> actual,
                              std::span<const double> estimate, double mean) {
  const size_t n = actual.size() < estimate.size() ? actual.size()
                                                   : estimate.size();
  return SumSqDevCore<true>(actual.data(), estimate.data(), n, mean);
}

MaskedMoments MaskedMomentsOf(std::span<const double> residuals) {
  return MomentsCore<false>(residuals.data(), nullptr, residuals.size());
}

double MaskedSumSqDevOf(std::span<const double> residuals, double mean) {
  return SumSqDevCore<false>(residuals.data(), nullptr, residuals.size(),
                             mean);
}

}  // namespace kernels
}  // namespace dspot
