// Fig. 11 reproduction: long-range forecasting of "Grammy". Train on the
// first 400 weekly ticks, forecast the remaining ~3.4 years, and compare
// against AR with r = 8, 26, 50 and TBATS. The paper's shape: Δ-SPOT
// predicts the timing, duration and relative strength of the next
// Grammys; AR and TBATS fail to forecast the spikes.

#include <cstdio>

#include "baselines/ar.h"
#include "baselines/tbats.h"
#include "bench/bench_util.h"
#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

int Run() {
  std::printf("=== Fig. 11 — forecasting 'Grammy' (train 400 ticks) ===\n\n");
  GeneratorConfig config = GoogleTrendsConfig();
  auto full = GenerateGlobalSequence(GrammyScenario(), config);
  if (!full.ok()) {
    std::fprintf(stderr, "generate: %s\n", full.status().ToString().c_str());
    return 1;
  }
  const size_t train_ticks = 400;
  const Series train = full->Slice(0, train_ticks);
  const Series test = full->Slice(train_ticks, full->size());

  std::printf("(a) original sequence (%zu ticks; | marks the train/test "
              "split at tick %zu):\n", full->size(), train_ticks);
  std::printf("  train |%s|\n", bench::Sparkline(train).c_str());
  std::printf("  test  |%s|\n\n", bench::Sparkline(test).c_str());

  // Δ-SPOT.
  auto fit = FitDspotSingle(train);
  if (!fit.ok()) {
    std::fprintf(stderr, "fit: %s\n", fit.status().ToString().c_str());
    return 1;
  }
  auto forecast = ForecastGlobal(fit->params, 0, test.size());
  if (!forecast.ok()) {
    std::fprintf(stderr, "forecast: %s\n",
                 forecast.status().ToString().c_str());
    return 1;
  }
  std::printf("(b) Δ-SPOT forecast:\n");
  std::printf("  fc    |%s|\n", bench::Sparkline(*forecast).c_str());
  std::printf("  events carried forward:\n");
  for (const Shock& shock : fit->params.shocks) {
    std::printf("    * %s\n", bench::DescribeEvent(shock).c_str());
  }

  std::printf("\n(c) competitor forecasts:\n");
  std::printf("%-18s %12s\n", "method", "RMSE");
  std::printf("%-18s %12.3f\n", "Δ-SPOT", Rmse(test, *forecast));
  for (size_t order : {8u, 26u, 50u}) {
    auto ar = ArModel::Fit(train, order);
    if (!ar.ok()) {
      std::printf("AR(%zu) failed: %s\n", order,
                  ar.status().ToString().c_str());
      continue;
    }
    const Series ar_fc = ar->Forecast(train, test.size());
    std::printf("AR(%-2zu)             %12.3f\n", order, Rmse(test, ar_fc));
    if (order == 50) {
      std::printf("  AR50  |%s|\n", bench::Sparkline(ar_fc).c_str());
    }
  }
  auto tbats = TbatsModel::Fit(train);
  if (tbats.ok()) {
    const Series tb_fc = tbats->Forecast(train, test.size());
    std::printf("%-18s %12.3f\n", "TBATS", Rmse(test, tb_fc));
    std::printf("  TBATS |%s|\n", bench::Sparkline(tb_fc).c_str());
  } else {
    std::printf("TBATS failed: %s\n", tbats.status().ToString().c_str());
  }

  std::printf("\nExpected shape: Δ-SPOT predicts the next spikes at the "
              "right ticks with the right magnitude; AR/TBATS decay to the "
              "mean or forecast a smooth seasonal wave.\n");
  return 0;
}

}  // namespace
}  // namespace dspot

int main() { return dspot::Run(); }
