// Micro-benchmarks (google-benchmark) for the numeric kernels underlying
// the pipeline: SIV simulation, epsilon construction, LM on a canonical
// problem, and the dense solvers. A custom main additionally times the
// kernel layer directly (SIMD batch vs scalar SIV, SIMD vs scalar-fold
// reductions, analytic vs numeric LM Jacobians) and exports the results —
// including the bit-identity / golden-tolerance verdicts the CI kernel
// job asserts on — to BENCH_micro.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <limits>
#include <numeric>

#include "bench_util.h"
#include "common/math_util.h"
#include "core/dspot.h"
#include "core/shock.h"
#include "core/simulate.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "guard/fault_injector.h"
#include "kernels/dspot_simd.h"
#include "kernels/reduce.h"
#include "kernels/siv_kernel.h"
#include "linalg/matrix.h"
#include "linalg/solvers.h"
#include "mdl/mdl.h"
#include "obs/metrics.h"
#include "optimize/levenberg_marquardt.h"
#include "optimize/line_search.h"
#include "timeseries/peaks.h"
#include "timeseries/stats.h"

namespace dspot {
namespace {

void BM_SimulateSiv(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SivInputs inputs;
  inputs.population = 200.0;
  inputs.beta = 0.5;
  inputs.delta = 0.45;
  inputs.gamma = 0.5;
  inputs.i0 = 1.0;
  inputs.epsilon.assign(n, 1.0);
  for (size_t t = 30; t < n; t += 52) {
    inputs.epsilon[t] = 9.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulateSiv(inputs, n));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SimulateSiv)->Arg(128)->Arg(575)->Arg(2048);

/// The bare recurrence with caller-owned schedules and output buffer — the
/// floor every residual evaluation pays. The loop is a serial FP
/// dependency chain (one divide + chained multiplies per tick), so this
/// does not vectorize; the workspace refactor removes everything *around*
/// it, not the chain itself.
void BM_SimulateSivInto(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> epsilon(n, 1.0);
  for (size_t t = 30; t < n; t += 52) {
    epsilon[t] = 9.0;
  }
  const SivDynamics dynamics{200.0, 0.5, 0.45, 0.5, 1.0};
  std::vector<double> out(n);
  for (auto _ : state) {
    SimulateSivInto(dynamics, epsilon, {}, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SimulateSivInto)->Arg(128)->Arg(575)->Arg(2048);

/// Fixture mirroring GLOBALFIT's per-keyword state: the data sequence,
/// the keyword's shocks, and the SIV scalars under optimization.
struct ResidualFixture {
  Series data;
  std::vector<Shock> shocks;
  double population = 200.0;
  double beta = 0.5;
  double delta = 0.45;
  double gamma = 0.5;
  double i0 = 1.0;
};

ResidualFixture MakeResidualFixture(size_t n) {
  ResidualFixture f;
  f.data = Series(n);
  for (size_t t = 0; t < n; ++t) {
    f.data[t] = 5.0 + 2.0 * std::sin(0.2 * static_cast<double>(t));
  }
  f.shocks.resize(1);
  f.shocks[0].period = 52;
  f.shocks[0].start = 30;
  f.shocks[0].width = 3;
  f.shocks[0].global_strengths.assign(f.shocks[0].NumOccurrences(n), 8.0);
  return f;
}

/// One residual evaluation as the pre-workspace base fit performed it:
/// copy the fit state (data + shocks), rebuild the epsilon/eta schedules,
/// allocate a fresh Series trajectory, and grow the residual vector with
/// push_back — on every single LM residual call.
void BM_ResidualSimulateAllocating(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ResidualFixture fixture = MakeResidualFixture(n);
  std::vector<double> residuals;
  for (auto _ : state) {
    ResidualFixture probe = fixture;
    SivInputs inputs;
    inputs.population = probe.population;
    inputs.beta = probe.beta;
    inputs.delta = probe.delta;
    inputs.gamma = probe.gamma;
    inputs.i0 = probe.i0;
    inputs.epsilon = BuildGlobalEpsilon(probe.shocks, 0, n);
    inputs.eta = BuildEta(0.01, n / 3, n);
    const Series est = SimulateSiv(inputs, n);
    residuals.clear();
    for (size_t t = 0; t < n; ++t) {
      if (!probe.data.IsObserved(t)) continue;
      residuals.push_back(est[t] - probe.data[t]);
    }
    benchmark::DoNotOptimize(residuals.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ResidualSimulateAllocating)->Arg(128)->Arg(575)->Arg(2048);

/// The same residual evaluation on the workspace path: schedules hoisted
/// out of the solve (ScheduleCache serves memoized spans), the trajectory
/// written into a caller-owned buffer, and residuals written through the
/// precomputed observed-tick index — what every LM residual call costs
/// after the refactor.
void BM_ResidualSimulateWorkspace(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ResidualFixture fixture = MakeResidualFixture(n);
  ScheduleCache cache;
  const std::span<const double> epsilon =
      cache.GlobalEpsilon(fixture.shocks, 0, n);
  const std::span<const double> eta = cache.Eta(0.01, n / 3, n);
  std::vector<size_t> observed;
  for (size_t t = 0; t < n; ++t) {
    if (fixture.data.IsObserved(t)) observed.push_back(t);
  }
  const std::span<const double> data = fixture.data.values();
  std::vector<double> estimate(n);
  std::vector<double> residuals(observed.size());
  for (auto _ : state) {
    const SivDynamics dynamics{fixture.population, fixture.beta,
                               fixture.delta, fixture.gamma, fixture.i0};
    SimulateSivInto(dynamics, epsilon, eta, estimate);
    for (size_t k = 0; k < observed.size(); ++k) {
      const size_t t = observed[k];
      residuals[k] = estimate[t] - data[t];
    }
    benchmark::DoNotOptimize(residuals.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ResidualSimulateWorkspace)->Arg(128)->Arg(575)->Arg(2048);

void BM_BuildGlobalEpsilon(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Shock> shocks(4);
  for (size_t k = 0; k < shocks.size(); ++k) {
    shocks[k].keyword = 0;
    shocks[k].period = 52;
    shocks[k].start = 5 + 3 * k;
    shocks[k].width = 3;
    shocks[k].global_strengths.assign(shocks[k].NumOccurrences(n), 5.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildGlobalEpsilon(shocks, 0, n));
  }
}
BENCHMARK(BM_BuildGlobalEpsilon)->Arg(575)->Arg(2048);

void BM_LevenbergMarquardtRosenbrock(benchmark::State& state) {
  auto residual_fn = [](const std::vector<double>& p,
                        std::vector<double>* r) -> Status {
    r->assign({10.0 * (p[1] - p[0] * p[0]), 1.0 - p[0]});
    return Status::Ok();
  };
  for (auto _ : state) {
    auto result = LevenbergMarquardt(residual_fn, {-1.2, 1.0});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LevenbergMarquardtRosenbrock);

void BM_LevenbergMarquardtWorkspace(benchmark::State& state) {
  ResidualIntoFn residual_fn = [](std::span<const double> p,
                                  std::span<double> r) -> Status {
    r[0] = 10.0 * (p[1] - p[0] * p[0]);
    r[1] = 1.0 - p[0];
    return Status::Ok();
  };
  LmWorkspace workspace;
  const std::vector<double> initial = {-1.2, 1.0};
  for (auto _ : state) {
    auto result = LevenbergMarquardt(residual_fn, 2, initial, Bounds(),
                                     LmOptions(), &workspace);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LevenbergMarquardtWorkspace);

/// End-to-end Δ-SPOT fit on a small synthetic tensor (1 keyword, 3
/// locations, 2 years of weekly ticks): the macro view of the workspace
/// refactor, covering GLOBALFIT's alternation, LOCALFIT, and the final
/// MDL scoring.
void BM_FitDspotSmall(benchmark::State& state) {
  GeneratorConfig config = GoogleTrendsConfig(3);
  config.n_ticks = 104;
  config.num_locations = 3;
  config.num_outlier_locations = 0;
  auto generated = GenerateTensor({GrammyScenario()}, config);
  if (!generated.ok()) {
    state.SkipWithError("tensor generation failed");
    return;
  }
  DspotOptions options;
  options.global.max_outer_rounds = 1;
  options.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = FitDspot(generated->tensor, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FitDspotSmall)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_CholeskySolve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = (i == j) ? 4.0 : 1.0 / static_cast<double>(1 + i + j);
    }
  }
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CholeskySolve(a, b));
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(8)->Arg(32)->Arg(128);

Series SpikyFixture(size_t n) {
  Series s(n);
  for (size_t t = 0; t < n; ++t) {
    s[t] = 10.0 + 3.0 * std::sin(0.37 * static_cast<double>(t));
  }
  for (size_t t = 6; t < n; t += 52) {
    s[t] = 120.0;
  }
  return s;
}

void BM_Autocorrelation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Series s = SpikyFixture(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Autocorrelation(s, n / 2));
  }
}
BENCHMARK(BM_Autocorrelation)->Arg(575)->Arg(2048);

void BM_FindBursts(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Series s = SpikyFixture(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindBursts(s));
  }
}
BENCHMARK(BM_FindBursts)->Arg(575)->Arg(2048);

void BM_GaussianCodingCost(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Series a = SpikyFixture(n);
  Series e = a;
  for (size_t t = 0; t < n; ++t) e[t] += 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GaussianCodingCost(a, e));
  }
}
BENCHMARK(BM_GaussianCodingCost)->Arg(575)->Arg(2048);

void BM_PoissonCodingCost(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Series a = SpikyFixture(n);
  Series e = a;
  for (size_t t = 0; t < n; ++t) e[t] += 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PoissonCodingCost(a, e));
  }
}
BENCHMARK(BM_PoissonCodingCost)->Arg(575)->Arg(2048);

void BM_GoldenSection(benchmark::State& state) {
  auto fn = [](double x) { return (x - 3.3) * (x - 3.3); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(GoldenSectionMinimize(fn, 0.0, 50.0, 1e-6));
  }
}
BENCHMARK(BM_GoldenSection);

// --- dspot_obs probe cost ---------------------------------------------
//
// The observability contract is "disarmed probes are free": one relaxed
// atomic load, the same budget the FaultInjector probe pays. These four
// benchmarks pin that claim — the disarmed counter and span should match
// BM_FaultInjectorProbeDisarmed within noise, and the armed variants show
// what turning DSPOT_OBS=1 actually costs per probe.

void BM_FaultInjectorProbeDisarmed(benchmark::State& state) {
  FaultInjector::Instance().Disarm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FaultInjector::Instance().armed());
  }
}
BENCHMARK(BM_FaultInjectorProbeDisarmed);

void BM_ObsCounterDisarmed(benchmark::State& state) {
  ObsRegistry::Instance().Disable();
  for (auto _ : state) {
    DSPOT_COUNT("bench.disarmed.counter", 1);
  }
}
BENCHMARK(BM_ObsCounterDisarmed);

void BM_ObsSpanDisarmed(benchmark::State& state) {
  ObsRegistry::Instance().Disable();
  for (auto _ : state) {
    DSPOT_SPAN("bench.disarmed.span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsSpanDisarmed);

void BM_ObsCounterArmed(benchmark::State& state) {
  ObsRegistry::Instance().Enable(ObsOptions{});
  for (auto _ : state) {
    DSPOT_COUNT("bench.armed.counter", 1);
  }
  ObsRegistry::Instance().Disable();
  ObsRegistry::Instance().Reset();
}
BENCHMARK(BM_ObsCounterArmed);

void BM_ObsSpanArmed(benchmark::State& state) {
  ObsRegistry::Instance().Enable(ObsOptions{});  // metrics only, no trace
  for (auto _ : state) {
    DSPOT_SPAN("bench.armed.span");
    benchmark::ClobberMemory();
  }
  ObsRegistry::Instance().Disable();
  ObsRegistry::Instance().Reset();
}
BENCHMARK(BM_ObsSpanArmed);

// --- kernel-layer report (BENCH_micro.json) ---------------------------
//
// Direct chrono timings of the kernel layer plus the correctness verdicts
// the CI kernel job asserts on: the SIMD batch simulation must be
// bit-identical to the scalar recurrence, SIMD reductions must agree with
// a scalar left fold within the golden tolerance, and the analytic LM
// Jacobian must land on the same fit as the numeric one.

/// Best-of-`reps` wall-clock seconds of `fn` (best filters scheduler
/// noise better than the mean on a loaded CI box).
template <typename Fn>
double BestSeconds(int reps, const Fn& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// SIMD batch SIV vs the scalar recurrence run lane by lane: speedup and
/// bit-identity over every (tick, lane) cell.
void AddSivBatchMetrics(bench::BenchJson* json) {
  constexpr size_t kCount = 64;
  constexpr size_t kTicks = 575;
  constexpr int kInner = 20;
  std::vector<double> population(kCount), beta(kCount), delta(kCount),
      gamma(kCount), i0(kCount);
  for (size_t l = 0; l < kCount; ++l) {
    const double f = static_cast<double>(l);
    population[l] = 150.0 + 2.0 * f;
    beta[l] = 0.3 + 0.005 * f;
    delta[l] = 0.2 + 0.004 * f;
    gamma[l] = 0.1 + 0.003 * f;
    i0[l] = 1.0 + 0.05 * f;
  }
  const kernels::SivBatchSoA batch{population.data(), beta.data(),
                                   delta.data(),      gamma.data(),
                                   i0.data(),         nullptr,
                                   nullptr};
  std::vector<double> batch_out(kTicks * kCount);
  std::vector<double> lane_out(kTicks);

  const double batch_secs = BestSeconds(5, [&] {
    for (int it = 0; it < kInner; ++it) {
      kernels::SimulateSivBatchInto(batch, kCount, kTicks, batch_out.data());
      benchmark::DoNotOptimize(batch_out.data());
    }
  });
  const double scalar_secs = BestSeconds(5, [&] {
    for (int it = 0; it < kInner; ++it) {
      for (size_t l = 0; l < kCount; ++l) {
        const kernels::SivParams p{population[l], beta[l], delta[l], gamma[l],
                                   i0[l]};
        kernels::SimulateSivScalarInto(p, {}, {}, lane_out);
        benchmark::DoNotOptimize(lane_out.data());
      }
    }
  });

  kernels::SimulateSivBatchInto(batch, kCount, kTicks, batch_out.data());
  bool bit_identical = true;
  for (size_t l = 0; l < kCount; ++l) {
    const kernels::SivParams p{population[l], beta[l], delta[l], gamma[l],
                               i0[l]};
    kernels::SimulateSivScalarInto(p, {}, {}, lane_out);
    for (size_t t = 0; t < kTicks; ++t) {
      if (batch_out[t * kCount + l] != lane_out[t]) bit_identical = false;
    }
  }

  const double speedup = scalar_secs / batch_secs;
  json->Set("siv_batch_speedup", speedup);
  json->Set("siv_batch_bit_identical", bit_identical ? 1.0 : 0.0);
  std::printf("kernel: SIV batch x%zu  speedup %.2fx  bit-identical %s\n",
              kCount, speedup, bit_identical ? "yes" : "NO");
}

/// SIMD reductions vs scalar left folds: speedup plus the relative
/// deviation, which must stay inside kernels::simd::-style tolerance.
void AddReduceMetrics(bench::BenchJson* json) {
  constexpr size_t kN = 1 << 16;
  constexpr int kInner = 100;
  std::vector<double> actual(kN), estimate(kN), residuals(kN);
  for (size_t i = 0; i < kN; ++i) {
    const double x = static_cast<double>(i);
    actual[i] = 10.0 + 3.0 * std::sin(0.37 * x);
    estimate[i] = actual[i] + 0.25 * std::cos(0.11 * x);
    residuals[i] = actual[i] - estimate[i];
  }
  for (size_t i = 0; i < kN; i += 97) actual[i] = kMissingValue;

  double simd_sum = 0.0;
  const double simd_secs = BestSeconds(5, [&] {
    for (int it = 0; it < kInner; ++it) {
      simd_sum = kernels::SumSquares(residuals);
      benchmark::DoNotOptimize(simd_sum);
    }
  });
  double scalar_sum = 0.0;
  const double scalar_secs = BestSeconds(5, [&] {
    for (int it = 0; it < kInner; ++it) {
      double acc = 0.0;
      for (const double r : residuals) acc += r * r;
      scalar_sum = acc;
      benchmark::DoNotOptimize(scalar_sum);
    }
  });
  const double rel_err =
      std::fabs(simd_sum - scalar_sum) / std::max(std::fabs(scalar_sum), 1.0);
  const double sumsq_speedup = scalar_secs / simd_secs;

  kernels::MaskedMoments simd_moments;
  const double moments_simd_secs = BestSeconds(5, [&] {
    for (int it = 0; it < kInner; ++it) {
      simd_moments = kernels::MaskedResidualMoments(actual, estimate);
      benchmark::DoNotOptimize(simd_moments);
    }
  });
  double scalar_count = 0.0, scalar_msum = 0.0;
  const double moments_scalar_secs = BestSeconds(5, [&] {
    for (int it = 0; it < kInner; ++it) {
      double count = 0.0, sum = 0.0;
      for (size_t i = 0; i < kN; ++i) {
        const double r = actual[i] - estimate[i];
        if (!std::isfinite(r)) continue;
        count += 1.0;
        sum += r;
      }
      scalar_count = count;
      scalar_msum = sum;
      benchmark::DoNotOptimize(scalar_msum);
    }
  });
  const double moments_speedup = moments_scalar_secs / moments_simd_secs;
  const double moments_rel_err =
      std::fabs(simd_moments.sum - scalar_msum) /
      std::max(std::fabs(scalar_msum), 1.0);
  const bool within_tol = rel_err <= simd::kReduceRelTol * 1e3 &&
                          moments_rel_err <= simd::kReduceRelTol * 1e3 &&
                          simd_moments.count == scalar_count;

  json->Set("sumsq_speedup", sumsq_speedup);
  json->Set("sumsq_rel_err", rel_err);
  json->Set("residual_moments_speedup", moments_speedup);
  json->Set("reduce_within_tolerance", within_tol ? 1.0 : 0.0);
  std::printf(
      "kernel: reductions  sumsq %.2fx (rel err %.2e)  moments %.2fx  "
      "within-tolerance %s\n",
      sumsq_speedup, rel_err, moments_speedup, within_tol ? "yes" : "NO");
}

/// Analytic (dual-number) vs numeric (forward-difference) LM Jacobians on
/// a canonical SIV recovery problem: iteration counts and whether the two
/// modes land on the same fit within golden tolerance.
void AddLmJacobianMetrics(bench::BenchJson* json) {
  constexpr size_t kTicks = 104;
  const kernels::SivParams truth{200.0, 0.5, 0.45, 0.5, 1.0};
  std::vector<double> data(kTicks);
  kernels::SimulateSivScalarInto(truth, {}, {}, data);

  std::vector<double> est(kTicks);
  ResidualIntoFn residual_fn = [&](std::span<const double> p,
                                   std::span<double> r) -> Status {
    const kernels::SivParams sp{p[0], p[1], p[2], p[3], p[4]};
    kernels::SimulateSivScalarInto(sp, {}, {}, est);
    for (size_t t = 0; t < kTicks; ++t) r[t] = est[t] - data[t];
    return Status::Ok();
  };
  std::vector<size_t> observed(kTicks);
  std::iota(observed.begin(), observed.end(), size_t{0});

  Bounds bounds;
  bounds.lower = {50.0, 1e-3, 1e-3, 1e-3, 0.1};
  bounds.upper = {1000.0, 2.0, 1.0, 1.0, 10.0};
  const std::vector<double> init = {150.0, 0.4, 0.3, 0.4, 2.0};
  LmWorkspace ws;

  LmOptions numeric_options;
  numeric_options.max_iterations = 300;
  const auto numeric = LevenbergMarquardt(residual_fn, kTicks, init, bounds,
                                          numeric_options, &ws);
  LmOptions analytic_options;
  analytic_options.max_iterations = 300;
  analytic_options.analytic_jacobian = [&](std::span<const double> p,
                                           Matrix* jac) -> Status {
    const kernels::SivParams sp{p[0], p[1], p[2], p[3], p[4]};
    kernels::SivJacobianInto(sp, {}, {}, observed, kTicks, jac->MutableData(),
                             jac->cols());
    return Status::Ok();
  };
  const auto analytic = LevenbergMarquardt(residual_fn, kTicks, init, bounds,
                                           analytic_options, &ws);
  if (!numeric.ok() || !analytic.ok()) {
    std::fprintf(stderr, "kernel: LM jacobian comparison failed to fit\n");
    json->Set("lm_within_golden_tolerance", 0.0);
    return;
  }
  double param_rel_diff = 0.0;
  for (size_t k = 0; k < numeric->params.size(); ++k) {
    const double scale = std::max(std::fabs(numeric->params[k]), 1e-9);
    param_rel_diff = std::max(
        param_rel_diff,
        std::fabs(numeric->params[k] - analytic->params[k]) / scale);
  }
  // "Same fit" is judged on the fitted trajectory, not raw parameters: the
  // SIV likelihood has a population/i0 ridge, so two optima can predict the
  // same series with visibly different parameter vectors. The golden
  // tolerance (1e-4 of the data scale, same as the fit-level tests) applies
  // to the trajectory difference and to each mode's residual RMSE.
  auto rmse_of = [&](const std::vector<double>& p) {
    const kernels::SivParams sp{p[0], p[1], p[2], p[3], p[4]};
    std::vector<double> sim(kTicks);
    kernels::SimulateSivScalarInto(sp, {}, {}, sim);
    double ss = 0.0;
    for (size_t t = 0; t < kTicks; ++t) {
      const double r = sim[t] - data[t];
      ss += r * r;
    }
    return std::make_pair(std::sqrt(ss / static_cast<double>(kTicks)), sim);
  };
  const auto [rmse_numeric, sim_numeric] = rmse_of(numeric->params);
  const auto [rmse_analytic, sim_analytic] = rmse_of(analytic->params);
  double data_scale = 1.0;
  for (double v : data) data_scale = std::max(data_scale, std::fabs(v));
  double traj_diff = 0.0;
  for (size_t t = 0; t < kTicks; ++t) {
    traj_diff = std::max(traj_diff, std::fabs(sim_numeric[t] - sim_analytic[t]));
  }
  const double traj_rel_diff = traj_diff / data_scale;
  const bool within = traj_rel_diff <= 1e-4 &&
                      rmse_numeric <= 1e-4 * data_scale &&
                      rmse_analytic <= 1e-4 * data_scale;
  json->Set("lm_iterations_numeric", static_cast<double>(numeric->iterations));
  json->Set("lm_iterations_analytic",
            static_cast<double>(analytic->iterations));
  json->Set("lm_param_max_rel_diff", param_rel_diff);
  json->Set("lm_rmse_numeric", rmse_numeric);
  json->Set("lm_rmse_analytic", rmse_analytic);
  json->Set("lm_trajectory_rel_diff", traj_rel_diff);
  json->Set("lm_within_golden_tolerance", within ? 1.0 : 0.0);
  std::printf(
      "kernel: LM iters numeric %d analytic %d  rmse %.2e/%.2e  "
      "trajectory rel diff %.2e  within-tolerance %s\n",
      numeric->iterations, analytic->iterations, rmse_numeric, rmse_analytic,
      traj_rel_diff, within ? "yes" : "NO");
}

void WriteKernelReport() {
  bench::BenchJson json("micro");
  json.Set("simd_isa", std::string(kernels::SimdIsaName()));
  json.Set("simd_lanes", static_cast<double>(kernels::SimdNumLanes()));
  AddSivBatchMetrics(&json);
  AddReduceMetrics(&json);
  AddLmJacobianMetrics(&json);
  if (json.WriteTo("BENCH_micro.json")) {
    std::printf("wrote BENCH_micro.json\n");
  }
}

}  // namespace
}  // namespace dspot

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dspot::WriteKernelReport();
  return 0;
}
