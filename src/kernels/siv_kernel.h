#ifndef DSPOT_KERNELS_SIV_KERNEL_H_
#define DSPOT_KERNELS_SIV_KERNEL_H_

#include <cstddef>
#include <span>

#include "kernels/dual.h"

namespace dspot {
namespace kernels {

/// The kernel layer's own copy of the SIV scalar parameters. Kept as a
/// leaf-layer POD (kernels must not depend on core/) and bridged from
/// core::SivDynamics by the callers in core/simulate.cc.
struct SivParams {
  double population = 1.0;
  double beta = 0.1;
  double delta = 0.1;
  double gamma = 0.05;
  double i0 = 1.0;
};

/// Parameter order of the Jacobian columns produced by SivJacobianInto:
/// {population, beta, delta, gamma, i0} — the same order GlobalFit packs
/// its LM parameter vector.
inline constexpr size_t kSivNumParams = 5;

/// The SIV recurrence (paper Model 1), templated over the scalar type so
/// one definition serves both the production double path and the
/// forward-mode Dual path (all parameter derivatives in a single pass).
///
/// Instantiated for double this is the exact operation sequence of the
/// original scalar SimulateSivInto — TMax/TClamp reproduce
/// std::max/std::clamp operand-for-operand — so outputs are bit-identical
/// to the seed kernel (asserted by tests/kernels_test.cc).
///
/// `epsilon` / `eta` may be shorter than the horizon (missing ticks use
/// eps = 1 / eta = 0). Writes I(t) into `out`; allocation-free.
template <typename T>
void SimulateSivT(const T& population, const T& beta, const T& delta_in,
                  const T& gamma_in, const T& i0,
                  std::span<const double> epsilon, std::span<const double> eta,
                  std::span<T> out) {
  const T n = TMax(population, T(1e-9));
  T i = TClamp(i0, T(0.0), n);
  T s = n - i;
  T v = T(0.0);
  const T delta = TClamp(delta_in, T(0.0), T(1.0));
  const T gamma = TClamp(gamma_in, T(0.0), T(1.0));

  const size_t n_ticks = out.size();
  for (size_t t = 0; t < n_ticks; ++t) {
    out[t] = i;

    const double eps = t < epsilon.size() ? epsilon[t] : 1.0;
    const double eta_t = t < eta.size() ? eta[t] : 0.0;
    const T raw_infect = beta * (s / n) * T(eps) * i * T(1.0 + eta_t);
    const T infect = TClamp(raw_infect, T(0.0), s);
    const T recover = delta * i;
    const T wane = gamma * v;

    s += wane - infect;
    i += infect - recover;
    v += recover - wane;
  }
}

/// Double instantiation as a plain function (the core/simulate.cc hot
/// kernel delegates here).
void SimulateSivScalarInto(const SivParams& params,
                           std::span<const double> epsilon,
                           std::span<const double> eta,
                           std::span<double> out);

/// Analytic Jacobian of I(t) with respect to the five SIV parameters via
/// one forward-mode Dual<5> pass: for each observed tick observed[k],
/// writes dI(observed[k])/d{population,beta,delta,gamma,i0} into
/// jac[k * row_stride + 0..4] (row-major, caller-owned). One simulation
/// pass replaces the five full re-simulations of a numeric Jacobian.
/// `n_ticks` is the simulation horizon; every observed index must be
/// < n_ticks. Allocation-free.
void SivJacobianInto(const SivParams& params, std::span<const double> epsilon,
                     std::span<const double> eta,
                     std::span<const size_t> observed, size_t n_ticks,
                     double* jac, size_t row_stride);

/// Structure-of-arrays batch of independent SIV simulations: lane l runs
/// the recurrence with parameters {population[l], beta[l], ...} and
/// per-tick schedules epsilon[t * count + l] / eta[t * count + l].
/// Null epsilon/eta mean eps = 1 / eta = 0 for every lane and tick
/// (non-null arrays must cover all n_ticks * count entries — the caller
/// pads short schedules with the same defaults when packing).
struct SivBatchSoA {
  const double* population = nullptr;
  const double* beta = nullptr;
  const double* delta = nullptr;
  const double* gamma = nullptr;
  const double* i0 = nullptr;
  const double* epsilon = nullptr;
  const double* eta = nullptr;
};

/// Runs `count` independent SIV simulations for n_ticks steps, writing
/// I(t) of lane l to out[t * count + l]. SIMD across lanes (the serial
/// dependency is across ticks, so vectorization happens over concurrent
/// simulations, not time); each lane performs the identical operation
/// sequence as SimulateSivScalarInto, so per-lane outputs are
/// BIT-IDENTICAL to the scalar kernel for finite inputs (see the policy
/// in dspot_simd.h; NaN/inf schedules are outside the contract because
/// SIMD min/max NaN semantics differ from std::clamp's).
void SimulateSivBatchInto(const SivBatchSoA& batch, size_t count,
                          size_t n_ticks, double* out);

}  // namespace kernels
}  // namespace dspot

#endif  // DSPOT_KERNELS_SIV_KERNEL_H_
