#include "optimize/nelder_mead.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

#include "guard/fault_injector.h"
#include "obs/metrics.h"

namespace dspot {

StatusOr<NelderMeadResult> NelderMead(const ScalarFn& fn,
                                      const std::vector<double>& initial,
                                      const Bounds& bounds,
                                      const NelderMeadOptions& options) {
  const size_t n = initial.size();
  if (n == 0) {
    return Status::InvalidArgument("NelderMead: empty parameters");
  }
  if (!bounds.empty() && (bounds.lower.size() != n || bounds.upper.size() != n)) {
    return Status::InvalidArgument("NelderMead: bounds size mismatch");
  }

  DSPOT_SPAN("nelder_mead.solve");
  DSPOT_COUNT("nelder_mead.solves", 1);
  const auto start_time = std::chrono::steady_clock::now();
  NelderMeadResult result;
  auto eval = [&](std::vector<double>* p) -> double {
    bounds.Clamp(p);
    ++result.evaluations;
    const double v = fn(*p);
    return std::isfinite(v) ? v : std::numeric_limits<double>::infinity();
  };

  // Build the initial simplex: start point plus one perturbed vertex per
  // dimension.
  std::vector<std::vector<double>> simplex;
  std::vector<double> values;
  {
    std::vector<double> p0 = initial;
    values.push_back(eval(&p0));
    simplex.push_back(std::move(p0));
    for (size_t j = 0; j < n; ++j) {
      std::vector<double> p = simplex[0];
      const double h =
          options.initial_step * std::max(1.0, std::fabs(p[j]));
      p[j] += h;
      values.push_back(eval(&p));
      simplex.push_back(std::move(p));
    }
  }

  std::vector<size_t> order(n + 1);
  std::iota(order.begin(), order.end(), 0);

  while (result.evaluations < options.max_evaluations) {
    if (options.guard.active() || FaultInjector::Instance().armed()) {
      Status guard_status = options.guard.Check("NelderMead");
      if (!guard_status.ok()) {
        if (guard_status.code() == StatusCode::kCancelled) {
          return guard_status;
        }
        result.health.termination = FitTermination::kDeadlineExceeded;
        break;
      }
    }
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return values[a] < values[b]; });
    const size_t best = order[0];
    const size_t worst = order[n];
    const size_t second_worst = order[n - 1];

    // Convergence: objective spread and simplex diameter.
    const double spread = values[worst] - values[best];
    double diameter = 0.0;
    for (size_t j = 0; j < n; ++j) {
      double lo = simplex[0][j], hi = simplex[0][j];
      for (size_t v = 1; v <= n; ++v) {
        lo = std::min(lo, simplex[v][j]);
        hi = std::max(hi, simplex[v][j]);
      }
      diameter = std::max(diameter, hi - lo);
    }
    if (spread < options.f_tolerance || diameter < options.x_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all vertices except the worst.
    std::vector<double> centroid(n, 0.0);
    for (size_t v = 0; v <= n; ++v) {
      if (v == worst) continue;
      for (size_t j = 0; j < n; ++j) {
        centroid[j] += simplex[v][j];
      }
    }
    for (double& c : centroid) {
      c /= static_cast<double>(n);
    }

    auto blend = [&](double coef) {
      std::vector<double> p(n);
      for (size_t j = 0; j < n; ++j) {
        p[j] = centroid[j] + coef * (centroid[j] - simplex[worst][j]);
      }
      return p;
    };

    std::vector<double> reflected = blend(options.reflection);
    const double f_reflected = eval(&reflected);

    if (f_reflected < values[best]) {
      // Try to expand further in the same direction.
      std::vector<double> expanded = blend(options.expansion);
      const double f_expanded = eval(&expanded);
      if (f_expanded < f_reflected) {
        simplex[worst] = std::move(expanded);
        values[worst] = f_expanded;
      } else {
        simplex[worst] = std::move(reflected);
        values[worst] = f_reflected;
      }
      continue;
    }
    if (f_reflected < values[second_worst]) {
      simplex[worst] = std::move(reflected);
      values[worst] = f_reflected;
      continue;
    }
    // Contract toward the centroid.
    std::vector<double> contracted = blend(-options.contraction);
    const double f_contracted = eval(&contracted);
    if (f_contracted < values[worst]) {
      simplex[worst] = std::move(contracted);
      values[worst] = f_contracted;
      continue;
    }
    // Shrink the whole simplex toward the best vertex.
    for (size_t v = 0; v <= n; ++v) {
      if (v == best) continue;
      for (size_t j = 0; j < n; ++j) {
        simplex[v][j] =
            simplex[best][j] +
            options.shrink * (simplex[v][j] - simplex[best][j]);
      }
      values[v] = eval(&simplex[v]);
    }
  }

  const size_t best = *std::min_element(
      order.begin(), order.end(),
      [&](size_t a, size_t b) { return values[a] < values[b]; });
  result.params = simplex[best];
  result.final_value = values[best];
  result.health.iterations = result.evaluations;
  if (result.health.termination != FitTermination::kDeadlineExceeded) {
    result.health.termination = result.converged
                                    ? FitTermination::kConverged
                                    : FitTermination::kMaxIterations;
  }
  result.health.wall_time_ms = ElapsedMs(start_time);
  DSPOT_COUNT("nelder_mead.evaluations",
              static_cast<uint64_t>(result.evaluations));
  return result;
}

}  // namespace dspot
