#ifndef DSPOT_CORE_FORECAST_H_
#define DSPOT_CORE_FORECAST_H_

#include <cstddef>

#include "common/statusor.h"
#include "core/params.h"
#include "timeseries/series.h"

namespace dspot {

/// Long-range forecasting (Section 6): the fitted dynamical system is
/// simply run past the training range. Cyclic shocks keep recurring —
/// future occurrences reuse the mean fitted strength of their event — and
/// the growth effect persists, so the forecast reproduces the timing,
/// duration and relative strength of upcoming events (e.g. the next
/// Grammys, every February).

/// Forecasts the global sequence of `keyword` for `horizon` ticks past the
/// training range; returns exactly those `horizon` future values.
/// `horizon == 0` returns an empty series (OK). A training range shorter
/// than a shock's fitted period is fine: occurrences past the fitted
/// strengths fall back to the event's base strength.
StatusOr<Series> ForecastGlobal(const ModelParamSet& params, size_t keyword,
                                size_t horizon);

/// Same, for one (keyword, location) pair. Requires a LocalFit'd set whose
/// local matrices match the declared dimensions (FailedPrecondition
/// otherwise — never an out-of-bounds read on a corrupt set).
StatusOr<Series> ForecastLocal(const ModelParamSet& params, size_t keyword,
                               size_t location, size_t horizon);

/// Training-range fit plus forecast in one series of length
/// params.num_ticks + horizon (convenient for plotting).
StatusOr<Series> FitAndForecastGlobal(const ModelParamSet& params,
                                      size_t keyword, size_t horizon);

}  // namespace dspot

#endif  // DSPOT_CORE_FORECAST_H_
