// Tests for src/obs: the metrics registry, spans, exporters, and — most
// importantly — the two contracts the observability layer must uphold:
//
//  * disarmed probes are free: an operator-new counting hook proves a
//    disarmed DSPOT_COUNT/DSPOT_SPAN site allocates nothing (and the
//    armed steady state allocates nothing once registered);
//  * observation never feeds back into the fit: results are bit-identical
//    with observation on vs off, and armed metric counts are identical at
//    1 and 8 threads because the fits themselves are.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "obs/export.h"
#include "obs/metrics.h"

// --- Global operator-new counting hook --------------------------------
//
// Same malloc-based replacement pattern as workspace_test.cc: counts
// every scalar/array heap allocation while enabled. The counter is
// process-wide, so counted regions run serially.

namespace {
std::atomic<bool> g_count_allocations{false};
std::atomic<std::size_t> g_allocation_count{0};
}  // namespace

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace dspot {
namespace {

/// RAII window that zeroes the counter on entry and reads it on exit.
class AllocationCounter {
 public:
  AllocationCounter() {
    g_allocation_count.store(0, std::memory_order_relaxed);
    g_count_allocations.store(true, std::memory_order_relaxed);
  }
  ~AllocationCounter() {
    g_count_allocations.store(false, std::memory_order_relaxed);
  }
  std::size_t count() const {
    return g_allocation_count.load(std::memory_order_relaxed);
  }
};

/// Known-clean registry state for a test body. The registry is a process
/// singleton, so every test starts by disabling and resetting it (the CI
/// obs job sets DSPOT_OBS=1, which would otherwise leak into the
/// disarmed-probe tests).
void ResetObs() {
  ObsRegistry::Instance().Disable();
  ObsRegistry::Instance().Reset();
}

TEST(ObsRegistry, CounterAggregatesAcrossShards) {
  ResetObs();
  Counter& c = ObsRegistry::Instance().GetCounter("test.counter");
  EXPECT_EQ(c.Total(), 0u);
  c.Add(3);
  c.Add(4);
  EXPECT_EQ(c.Total(), 7u);
  ObsRegistry::Instance().Reset();
  EXPECT_EQ(c.Total(), 0u);
}

TEST(ObsRegistry, HistogramStats) {
  ResetObs();
  Histogram& h = ObsRegistry::Instance().GetHistogram("test.hist");
  h.Record(1.0);
  h.Record(3.0);
  h.Record(2.0);
  const ObsSnapshot snap = ObsRegistry::Instance().Snapshot();
  const MetricSnapshot* m = snap.Find("test.hist");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 3u);
  EXPECT_DOUBLE_EQ(m->sum, 6.0);
  EXPECT_DOUBLE_EQ(m->min, 1.0);
  EXPECT_DOUBLE_EQ(m->max, 3.0);
}

TEST(ObsRegistry, SnapshotIsNameOrderedWithinKind) {
  ResetObs();
  ObsRegistry::Instance().GetCounter("test.z");
  ObsRegistry::Instance().GetCounter("test.a");
  const ObsSnapshot snap = ObsRegistry::Instance().Snapshot();
  size_t ia = 0, iz = 0;
  for (size_t i = 0; i < snap.metrics.size(); ++i) {
    if (snap.metrics[i].name == "test.a") ia = i;
    if (snap.metrics[i].name == "test.z") iz = i;
  }
  EXPECT_LT(ia, iz);
}

TEST(ObsMacros, DisarmedMacrosRecordNothing) {
  ResetObs();
  for (int i = 0; i < 10; ++i) {
    DSPOT_COUNT("test.disarmed.counter", 1);
    DSPOT_OBSERVE("test.disarmed.hist", 1.0);
    DSPOT_GAUGE_SET("test.disarmed.gauge", 5.0);
    DSPOT_SPAN("test.disarmed.span");
  }
  const ObsSnapshot snap = ObsRegistry::Instance().Snapshot();
  // The disarmed macros never even register their metrics.
  EXPECT_EQ(snap.Find("test.disarmed.counter"), nullptr);
  EXPECT_EQ(snap.Find("test.disarmed.hist"), nullptr);
  EXPECT_EQ(snap.Find("test.disarmed.gauge"), nullptr);
  EXPECT_EQ(snap.Find("test.disarmed.span"), nullptr);
}

TEST(ObsMacros, ArmedMacrosRecord) {
  ResetObs();
  ObsRegistry::Instance().Enable(ObsOptions{});
  for (int i = 0; i < 3; ++i) {
    DSPOT_COUNT("test.armed.counter", 2);
    DSPOT_OBSERVE("test.armed.hist", 1.5);
    DSPOT_GAUGE_SET("test.armed.gauge", 7.0);
    DSPOT_SPAN("test.armed.span");
  }
  const ObsSnapshot snap = ObsRegistry::Instance().Snapshot();
  EXPECT_EQ(snap.CounterValue("test.armed.counter"), 6u);
  EXPECT_EQ(snap.HistogramCount("test.armed.hist"), 3u);
  const MetricSnapshot* gauge = snap.Find("test.armed.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value, 7.0);
  EXPECT_EQ(snap.HistogramCount("test.armed.span"), 3u);
  ResetObs();
}

TEST(ObsOverhead, DisarmedProbesDoNotAllocate) {
  ResetObs();
  // Warm-up pass: nothing should register disarmed, but run the sites
  // once anyway so any lazy runtime setup (TLS, static guards) is paid
  // before the counting window opens.
  for (int i = 0; i < 4; ++i) {
    DSPOT_COUNT("test.noalloc.counter", 1);
    DSPOT_OBSERVE("test.noalloc.hist", 2.0);
    DSPOT_SPAN("test.noalloc.span");
  }
  AllocationCounter alloc;
  for (int i = 0; i < 1000; ++i) {
    DSPOT_COUNT("test.noalloc.counter", 1);
    DSPOT_OBSERVE("test.noalloc.hist", 2.0);
    DSPOT_SPAN("test.noalloc.span");
  }
  EXPECT_EQ(alloc.count(), 0u);
}

TEST(ObsOverhead, ArmedSteadyStateDoesNotAllocate) {
  ResetObs();
  ObsRegistry::Instance().Enable(ObsOptions{});  // metrics only, no trace
  // First pass registers the metrics (allocates); steady state must not.
  for (int i = 0; i < 4; ++i) {
    DSPOT_COUNT("test.steady.counter", 1);
    DSPOT_OBSERVE("test.steady.hist", 2.0);
    DSPOT_SPAN("test.steady.span");
  }
  AllocationCounter alloc;
  for (int i = 0; i < 1000; ++i) {
    DSPOT_COUNT("test.steady.counter", 1);
    DSPOT_OBSERVE("test.steady.hist", 2.0);
    DSPOT_SPAN("test.steady.span");
  }
  EXPECT_EQ(alloc.count(), 0u);
  ResetObs();
}

// --- Fit bit-identity and determinism ----------------------------------

/// Small two-keyword tensor exercising global fit, local fit, shocks.
ActivityTensor TestTensor() {
  GeneratorConfig config = GoogleTrendsConfig(5);
  config.n_ticks = 150;
  config.num_locations = 3;
  config.num_outlier_locations = 1;
  auto generated = GenerateTensor({GrammyScenario()}, config);
  EXPECT_TRUE(generated.ok());
  return generated->tensor;
}

/// Flattens every number a fit produces, so two results can be compared
/// for exact (bit-level, via ==) equality.
std::vector<double> Flatten(const DspotResult& r) {
  std::vector<double> out;
  out.push_back(r.total_cost_bits);
  out.insert(out.end(), r.global_rmse.begin(), r.global_rmse.end());
  for (const KeywordGlobalParams& g : r.params.global) {
    out.push_back(g.population);
    out.push_back(g.beta);
    out.push_back(g.delta);
    out.push_back(g.gamma);
    out.push_back(g.i0);
    out.push_back(g.growth_rate);
    out.push_back(static_cast<double>(g.growth_start));
  }
  for (const Shock& s : r.params.shocks) {
    out.push_back(static_cast<double>(s.keyword));
    out.push_back(static_cast<double>(s.period));
    out.push_back(static_cast<double>(s.start));
    out.push_back(static_cast<double>(s.width));
    out.push_back(s.base_strength);
    out.insert(out.end(), s.global_strengths.begin(),
               s.global_strengths.end());
    for (size_t m = 0; m < s.local_strengths.rows(); ++m) {
      for (size_t j = 0; j < s.local_strengths.cols(); ++j) {
        out.push_back(s.local_strengths(m, j));
      }
    }
  }
  for (size_t i = 0; i < r.params.base_local.rows(); ++i) {
    for (size_t j = 0; j < r.params.base_local.cols(); ++j) {
      out.push_back(r.params.base_local(i, j));
      out.push_back(r.params.growth_local(i, j));
    }
  }
  return out;
}

DspotResult FitAt(const ActivityTensor& tensor, size_t threads) {
  DspotOptions options;
  options.num_threads = threads;
  auto result = FitDspot(tensor, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

TEST(ObsBitIdentity, FitUnchangedByObservation) {
  const ActivityTensor tensor = TestTensor();

  ResetObs();
  const std::vector<double> off = Flatten(FitAt(tensor, 1));

  ObsRegistry::Instance().Enable(ObsOptions{});
  const std::vector<double> metrics_on = Flatten(FitAt(tensor, 1));

  ObsOptions traced;
  traced.trace = true;
  ObsRegistry::Instance().Reset();
  ObsRegistry::Instance().Enable(traced);
  const std::vector<double> trace_on = Flatten(FitAt(tensor, 1));
  ResetObs();

  ASSERT_EQ(off.size(), metrics_on.size());
  ASSERT_EQ(off.size(), trace_on.size());
  for (size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i], metrics_on[i]) << "index " << i;
    EXPECT_EQ(off[i], trace_on[i]) << "index " << i;
  }
}

/// Timing-independent subset of the armed metrics: counter totals and
/// histogram (span) counts for the fit-logic metrics. Durations, gauges
/// set per-call, and the pool/guard metrics (task executions differ with
/// scheduling) are excluded by construction.
bool DeterministicAcrossThreadCounts(const std::string& name) {
  return name.rfind("pool.", 0) != 0 && name.rfind("guard.", 0) != 0;
}

TEST(ObsDeterminism, MetricCountsIdenticalAt1And8Threads) {
  const ActivityTensor tensor = TestTensor();

  ResetObs();
  ObsRegistry::Instance().Enable(ObsOptions{});
  const std::vector<double> fit1 = Flatten(FitAt(tensor, 1));
  const ObsSnapshot snap1 = ObsRegistry::Instance().Snapshot();

  ObsRegistry::Instance().Reset();
  const std::vector<double> fit8 = Flatten(FitAt(tensor, 8));
  const ObsSnapshot snap8 = ObsRegistry::Instance().Snapshot();
  ResetObs();

  // The fits themselves are bit-identical across thread counts...
  ASSERT_EQ(fit1.size(), fit8.size());
  for (size_t i = 0; i < fit1.size(); ++i) {
    EXPECT_EQ(fit1[i], fit8[i]) << "index " << i;
  }
  // ...so every deterministic metric must agree exactly.
  size_t compared = 0;
  for (const MetricSnapshot& m : snap1.metrics) {
    if (!DeterministicAcrossThreadCounts(m.name)) continue;
    switch (m.kind) {
      case MetricKind::kCounter:
        EXPECT_EQ(m.count, snap8.CounterValue(m.name)) << m.name;
        ++compared;
        break;
      case MetricKind::kHistogram:
        EXPECT_EQ(m.count, snap8.HistogramCount(m.name)) << m.name;
        ++compared;
        break;
      case MetricKind::kGauge:
        break;  // values like total_cost_bits are covered by fit equality
    }
  }
  // The instrumented pipeline must actually have reported: spans from the
  // global fit, the local fit, and the LM solver all fired.
  EXPECT_GT(compared, 5u);
  EXPECT_GT(snap1.CounterValue("fit_dspot.calls"), 0u);
  EXPECT_GT(snap1.CounterValue("global_fit.rounds"), 0u);
  EXPECT_GT(snap1.CounterValue("local_fit.locations"), 0u);
  EXPECT_GT(snap1.CounterValue("lm.solves"), 0u);
  EXPECT_GT(snap1.HistogramCount("lm.solve"), 0u);
}

// --- Exporters ----------------------------------------------------------

TEST(ObsExport, TableAndJsonRenderArmedFit) {
  const ActivityTensor tensor = TestTensor();
  ResetObs();
  ObsOptions traced;
  traced.trace = true;
  ObsRegistry::Instance().Enable(traced);
  FitAt(tensor, 2);

  const ObsSnapshot snap = ObsRegistry::Instance().Snapshot();
  const std::string table = RenderMetricsTable(snap);
  EXPECT_NE(table.find("fit_dspot.calls"), std::string::npos);
  EXPECT_NE(table.find("lm.solve"), std::string::npos);

  const std::string json = MetricsToJson(snap);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":["), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":["), std::string::npos);
  EXPECT_NE(json.find("\"global_fit.rounds\""), std::string::npos);
  // JSON must never carry NaN/inf literals.
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);

  const std::vector<TraceEvent> events =
      ObsRegistry::Instance().TraceEvents();
  ASSERT_FALSE(events.empty());
  // Events come out sorted by start time.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
  const std::string trace = TraceEventsToJson(events);
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("global_fit.round"), std::string::npos);
  EXPECT_NE(trace.find("local_fit.location"), std::string::npos);
  EXPECT_NE(trace.find("lm.solve"), std::string::npos);
  ResetObs();
}

TEST(ObsExport, WriteFilesRoundTrip) {
  ResetObs();
  ObsRegistry::Instance().Enable(ObsOptions{});
  DSPOT_COUNT("test.export.counter", 3);
  const std::string dir = ::testing::TempDir();
  const std::string metrics_path = dir + "/obs_test_metrics.json";
  ASSERT_TRUE(WriteMetricsJson(metrics_path).ok());
  std::FILE* f = std::fopen(metrics_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buffer[4096] = {};
  const size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  const std::string body(buffer, n);
  EXPECT_NE(body.find("test.export.counter"), std::string::npos);
  // Unwritable path surfaces as IoError, not a crash.
  EXPECT_FALSE(WriteMetricsJson("/nonexistent-dir/x/y.json").ok());
  ResetObs();
}

}  // namespace
}  // namespace dspot
