#ifndef DSPOT_BASELINES_TBATS_H_
#define DSPOT_BASELINES_TBATS_H_

#include <cstddef>
#include <vector>

#include "common/statusor.h"
#include "timeseries/series.h"

namespace dspot {

/// TBATS-style exponential smoothing with trigonometric seasonality (after
/// De Livera, Hyndman & Snyder 2011 — reference [8] of the paper). This is
/// the innovations state-space core of TBATS: level, damped trend and `k`
/// trigonometric harmonics of one seasonal period, without the Box-Cox and
/// ARMA-error layers (which matter for variance stabilization, not for the
/// spike-forecasting comparison the paper runs).
struct TbatsConfig {
  /// Seasonal period in ticks; 0 lets `Fit` pick it from ACF candidates.
  size_t period = 0;
  /// Number of trigonometric harmonics.
  size_t harmonics = 3;
  /// Nelder-Mead evaluation budget for the smoothing-parameter search.
  int max_evaluations = 4000;
};

/// Reusable scratch for TbatsModel::RunFilter: the seasonal state vectors
/// and the per-harmonic angular frequencies with their cos/sin rotation
/// coefficients (constant throughout one filter pass, so they are computed
/// once per call instead of once per tick).
struct TbatsWorkspace {
  std::vector<double> s;
  std::vector<double> s_star;
  std::vector<double> lambda;
  std::vector<double> cos_lambda;
  std::vector<double> sin_lambda;
};

/// A fitted TBATS-style model.
class TbatsModel {
 public:
  /// Fits to `data` (missing entries interpolated). Chooses the seasonal
  /// period from ACF candidates when config.period == 0. Requires at least
  /// 3 full seasonal cycles of data.
  static StatusOr<TbatsModel> Fit(const Series& data,
                                  const TbatsConfig& config = TbatsConfig());

  /// One-step-ahead in-sample predictions.
  Series PredictInSample(const Series& data) const;

  /// Multi-step forecast from the end of `history`.
  Series Forecast(const Series& history, size_t horizon) const;

  size_t period() const { return period_; }
  size_t harmonics() const { return harmonics_; }
  double alpha() const { return alpha_; }
  double beta() const { return beta_; }
  double phi() const { return phi_; }

 private:
  TbatsModel() = default;

  /// Runs the innovation filter over `data`. If `fitted` is non-null it
  /// receives the one-step-ahead predictions; returns the sum of squared
  /// innovations. Final state is written to the *_out pointers when
  /// non-null (used to seed forecasting).
  double RunFilter(const Series& data, Series* fitted, double* level_out,
                   double* trend_out, std::vector<double>* seasonal_out,
                   std::vector<double>* seasonal_star_out) const;

  /// Workspace form: identical arithmetic, state kept in `workspace` so the
  /// smoothing-parameter search reuses one allocation across evaluations.
  double RunFilter(const Series& data, Series* fitted, double* level_out,
                   double* trend_out, std::vector<double>* seasonal_out,
                   std::vector<double>* seasonal_star_out,
                   TbatsWorkspace* workspace) const;

  size_t period_ = 0;
  size_t harmonics_ = 0;
  double alpha_ = 0.1;   ///< level smoothing
  double beta_ = 0.01;   ///< trend smoothing
  double phi_ = 0.98;    ///< trend damping
  double gamma1_ = 0.01; ///< seasonal smoothing (cos states)
  double gamma2_ = 0.01; ///< seasonal smoothing (sin states)
  double init_level_ = 0.0;
  double init_trend_ = 0.0;
};

}  // namespace dspot

#endif  // DSPOT_BASELINES_TBATS_H_
