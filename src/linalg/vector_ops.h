#ifndef DSPOT_LINALG_VECTOR_OPS_H_
#define DSPOT_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace dspot {

/// Free-function helpers over std::vector<double>, used by the optimizers.
/// All binary operations assert equal sizes.

/// Dot product.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm2(const std::vector<double>& v);

/// Infinity norm (max |v_i|).
double NormInf(const std::vector<double>& v);

/// a + b.
std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b);

/// a - b.
std::vector<double> Sub(const std::vector<double>& a,
                        const std::vector<double>& b);

/// s * v.
std::vector<double> Scaled(const std::vector<double>& v, double s);

/// a += s * b (axpy), in place.
void Axpy(double s, const std::vector<double>& b, std::vector<double>* a);

/// Sum of squares of v.
double SumSquares(const std::vector<double>& v);

}  // namespace dspot

#endif  // DSPOT_LINALG_VECTOR_OPS_H_
