// Unit tests for the dspot_parallel runtime (ThreadPool, TaskGroup,
// ParallelFor/ParallelMap) plus the end-to-end determinism contract:
// FitDspot must produce bit-identical results at any thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace dspot {
namespace {

TEST(EffectiveNumThreads, ResolvesZeroToHardware) {
  EXPECT_GE(EffectiveNumThreads(0), 1u);
  EXPECT_EQ(EffectiveNumThreads(1), 1u);
  EXPECT_EQ(EffectiveNumThreads(5), 5u);
  EXPECT_EQ(EffectiveNumThreads(1 << 20), ThreadPool::kMaxWorkers);
}

TEST(SplitMix64, MixesNearbyIndices) {
  // Child seeds for consecutive task indices must not collide or share
  // obvious structure.
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) {
    outputs.insert(SplitMix64(i));
  }
  EXPECT_EQ(outputs.size(), 1000u);
  Random root(42);
  EXPECT_NE(root.Child(0).seed(), root.Child(1).seed());
  EXPECT_EQ(root.Child(3).seed(), Random(42).Child(3).seed());
}

TEST(ThreadPool, StartsAndStops) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  // Destructor joins parked workers without any task ever submitted.
}

TEST(ThreadPool, DrainsQueuedTasksOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, RunOneTaskHelpsFromNonWorkerThread) {
  ThreadPool pool(1);
  // Occupy the only worker so the queue cannot drain without help. Main
  // must not touch the queues until the worker has claimed this task —
  // otherwise main's own RunOneTask below could pop it and block forever.
  std::atomic<bool> occupied{false};
  std::atomic<bool> release{false};
  TaskGroup group(&pool);
  group.Run([&occupied, &release] {
    occupied.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  while (!occupied.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  while (count.load() == 0) {
    // The worker is busy; this (non-worker) thread must be able to pick
    // the task up itself.
    pool.RunOneTask();
  }
  EXPECT_EQ(count.load(), 1);
  release.store(true);
  group.Wait();
  EXPECT_FALSE(pool.RunOneTask());  // queues are empty again
}

TEST(ThreadPool, StealsUnderSkewedLoad) {
  constexpr int kSubtasks = 64;
  ThreadPool pool(4);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  // The producer enqueues all subtasks onto its own deque and then stays
  // busy until every one of them has run: each subtask can only have been
  // stolen by another worker (or the waiting main thread).
  group.Run([&pool, &count] {
    TaskGroup subtasks(&pool);
    for (int i = 0; i < kSubtasks; ++i) {
      subtasks.Run([&count] { count.fetch_add(1); });
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (count.load() < kSubtasks &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    subtasks.Wait();
  });
  group.Wait();
  EXPECT_EQ(count.load(), kSubtasks);
}

TEST(TaskGroup, RunsInlineWithoutPool) {
  TaskGroup group(nullptr);
  int value = 0;
  group.Run([&value] { value = 7; });
  EXPECT_EQ(value, 7);  // ran synchronously, before Wait
  group.Wait();
}

TEST(TaskGroup, PropagatesFirstException) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> completed{0};
  group.Run([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 8; ++i) {
    group.Run([&completed] { completed.fetch_add(1); });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // The failure did not tear down in-flight work.
  EXPECT_EQ(completed.load(), 8);
  // A second Wait does not re-throw the consumed error.
  group.Wait();
}

TEST(TaskGroup, PropagatesExceptionInline) {
  TaskGroup group(nullptr);
  group.Run([] { throw std::logic_error("inline failure"); });
  EXPECT_THROW(group.Wait(), std::logic_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{3}, size_t{8}}) {
    constexpr size_t kN = 1000;
    std::vector<int> hits(kN, 0);
    ParallelOptions options;
    options.num_threads = threads;
    ParallelFor(kN, options, [&hits](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " at " << threads
                            << " threads";
    }
  }
}

TEST(ParallelFor, GrainKeepsSmallRangesInline) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(16);
  ParallelOptions options;
  options.num_threads = 8;
  options.grain = 64;  // 16 <= 64: must run serially on the caller
  ParallelFor(ids.size(), options,
              [&ids](size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : ids) {
    EXPECT_EQ(id, caller);
  }
}

TEST(ParallelFor, NestedLoopsDoNotDeadlock) {
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 32;
  std::vector<std::vector<int>> hits(kOuter, std::vector<int>(kInner, 0));
  ParallelOptions options;
  options.num_threads = 4;
  ParallelFor(kOuter, options, [&hits, &options](size_t i) {
    ParallelFor(kInner, options,
                [&hits, i](size_t j) { ++hits[i][j]; });
  });
  for (size_t i = 0; i < kOuter; ++i) {
    for (size_t j = 0; j < kInner; ++j) {
      ASSERT_EQ(hits[i][j], 1) << "slot (" << i << ", " << j << ")";
    }
  }
}

TEST(ParallelMap, CollectsResultsInIndexOrder) {
  ParallelOptions serial;
  serial.num_threads = 1;
  ParallelOptions wide;
  wide.num_threads = 8;
  // Per-index child engines: the value of slot i depends only on i, so
  // the map is reproducible at any thread count.
  const auto value_at = [](size_t i) -> StatusOr<double> {
    Random rng = Random(99).Child(i);
    return rng.Uniform() + static_cast<double>(i);
  };
  auto a = ParallelMap<double>(256, serial, value_at);
  auto b = ParallelMap<double>(256, wide, value_at);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), 256u);
  for (size_t i = 0; i < a->size(); ++i) {
    ASSERT_EQ((*a)[i], (*b)[i]) << "slot " << i;
    ASSERT_GE((*a)[i], static_cast<double>(i));
  }
}

TEST(ParallelMap, ReportsLowestFailingIndexDeterministically) {
  ParallelOptions options;
  options.num_threads = 8;
  for (int attempt = 0; attempt < 5; ++attempt) {
    auto result = ParallelMap<int>(64, options, [](size_t i) -> StatusOr<int> {
      if (i == 3 || i == 47) {
        return Status::NumericalError("failure at index " +
                                      std::to_string(i));
      }
      return static_cast<int>(i);
    });
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kNumericalError);
    EXPECT_EQ(result.status().message(), "failure at index 3");
  }
}

/// Asserts that two pipeline results are bit-identical — the parallel
/// runtime's core guarantee (slot-ordered collection, index-ordered
/// reductions). EXPECT_EQ on doubles is exact equality, not approximate.
void ExpectIdenticalResults(const DspotResult& a, const DspotResult& b) {
  EXPECT_EQ(a.total_cost_bits, b.total_cost_bits);
  ASSERT_EQ(a.params.global.size(), b.params.global.size());
  for (size_t i = 0; i < a.params.global.size(); ++i) {
    const KeywordGlobalParams& pa = a.params.global[i];
    const KeywordGlobalParams& pb = b.params.global[i];
    EXPECT_EQ(pa.population, pb.population) << "keyword " << i;
    EXPECT_EQ(pa.beta, pb.beta) << "keyword " << i;
    EXPECT_EQ(pa.delta, pb.delta) << "keyword " << i;
    EXPECT_EQ(pa.gamma, pb.gamma) << "keyword " << i;
    EXPECT_EQ(pa.i0, pb.i0) << "keyword " << i;
    EXPECT_EQ(pa.growth_rate, pb.growth_rate) << "keyword " << i;
    EXPECT_EQ(pa.growth_start, pb.growth_start) << "keyword " << i;
  }
  ASSERT_EQ(a.params.shocks.size(), b.params.shocks.size());
  for (size_t k = 0; k < a.params.shocks.size(); ++k) {
    const Shock& sa = a.params.shocks[k];
    const Shock& sb = b.params.shocks[k];
    EXPECT_EQ(sa.keyword, sb.keyword) << "shock " << k;
    EXPECT_EQ(sa.period, sb.period) << "shock " << k;
    EXPECT_EQ(sa.start, sb.start) << "shock " << k;
    EXPECT_EQ(sa.width, sb.width) << "shock " << k;
    EXPECT_EQ(sa.base_strength, sb.base_strength) << "shock " << k;
    EXPECT_EQ(sa.global_strengths, sb.global_strengths) << "shock " << k;
    ASSERT_EQ(sa.local_strengths.rows(), sb.local_strengths.rows());
    ASSERT_EQ(sa.local_strengths.cols(), sb.local_strengths.cols());
    for (size_t m = 0; m < sa.local_strengths.rows(); ++m) {
      for (size_t j = 0; j < sa.local_strengths.cols(); ++j) {
        EXPECT_EQ(sa.local_strengths(m, j), sb.local_strengths(m, j))
            << "shock " << k << " occurrence " << m << " location " << j;
      }
    }
  }
  ASSERT_EQ(a.params.base_local.rows(), b.params.base_local.rows());
  ASSERT_EQ(a.params.base_local.cols(), b.params.base_local.cols());
  for (size_t i = 0; i < a.params.base_local.rows(); ++i) {
    for (size_t j = 0; j < a.params.base_local.cols(); ++j) {
      EXPECT_EQ(a.params.base_local(i, j), b.params.base_local(i, j));
      EXPECT_EQ(a.params.growth_local(i, j), b.params.growth_local(i, j));
    }
  }
  ASSERT_EQ(a.global_rmse.size(), b.global_rmse.size());
  for (size_t i = 0; i < a.global_rmse.size(); ++i) {
    EXPECT_EQ(a.global_rmse[i], b.global_rmse[i]) << "keyword " << i;
  }
}

TEST(ParallelFitDeterminism, FitDspotBitIdenticalAcrossThreadCounts) {
  GeneratorConfig config = GoogleTrendsConfig(11);
  config.n_ticks = 208;
  config.num_locations = 4;
  config.num_outlier_locations = 1;
  auto generated =
      GenerateTensor({GrammyScenario(), EbolaScenario()}, config);
  ASSERT_TRUE(generated.ok());

  DspotOptions options;
  options.global.max_outer_rounds = 2;  // keep the double fit affordable
  options.num_threads = 1;
  auto serial = FitDspot(generated->tensor, options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  options.num_threads = 8;
  auto parallel = FitDspot(generated->tensor, options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  ExpectIdenticalResults(*serial, *parallel);
}

}  // namespace
}  // namespace dspot
