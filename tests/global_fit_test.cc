// Tests for GLOBALFIT (Algorithm 2): event recovery, growth detection,
// MDL behaviour and the ablation switches.

#include <gtest/gtest.h>

#include "core/global_fit.h"
#include "core/simulate.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

GeneratorConfig SmallConfig(uint64_t seed = 42) {
  GeneratorConfig config = GoogleTrendsConfig(seed);
  config.n_ticks = 312;  // 6 years, keeps the tests quick
  config.num_locations = 6;
  config.num_outlier_locations = 0;
  return config;
}

Series Generate(const KeywordScenario& scenario, uint64_t seed = 42) {
  auto s = GenerateGlobalSequence(scenario, SmallConfig(seed));
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(GlobalFit, RecoversAnnualCycle) {
  Series data = Generate(GrammyScenario());
  auto fit = FitGlobalSequence(data, 0, 1);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  // At least one detected cyclic shock with a ~52-tick period.
  bool found = false;
  for (const Shock& s : fit->shocks) {
    if (s.IsCyclic() && s.period >= 50 && s.period <= 54) found = true;
  }
  EXPECT_TRUE(found);
  const double range = data.MaxValue() - data.MinValue();
  EXPECT_LT(fit->rmse, 0.12 * range);
}

TEST(GlobalFit, RecoversOneShotEvent) {
  KeywordScenario sc = EbolaScenario();
  sc.shocks[0].start = 200;  // keep inside the shortened horizon
  Series data = Generate(sc);
  auto fit = FitGlobalSequence(data, 0, 1);
  ASSERT_TRUE(fit.ok());
  ASSERT_GE(fit->shocks.size(), 1u);
  // The dominant shock sits near tick 200.
  bool near = false;
  for (const Shock& s : fit->shocks) {
    if (s.start >= 195 && s.start <= 205) near = true;
  }
  EXPECT_TRUE(near);
}

TEST(GlobalFit, DetectsGrowthEffect) {
  KeywordScenario sc = AmazonScenario();
  sc.growth_start = 150;
  Series data = Generate(sc);
  auto fit = FitGlobalSequence(data, 0, 1);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit->params.has_growth());
  // Onset within a coarse window of the truth (the grid is coarse and the
  // base dynamics can absorb part of the ramp).
  EXPECT_NEAR(static_cast<double>(fit->params.growth_start), 150.0, 80.0);
}

TEST(GlobalFit, ShocksDisabledByOption) {
  Series data = Generate(GrammyScenario());
  GlobalFitOptions options;
  options.allow_shocks = false;
  auto fit = FitGlobalSequence(data, 0, 1, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit->shocks.empty());
}

TEST(GlobalFit, GrowthDisabledByOption) {
  KeywordScenario sc = AmazonScenario();
  sc.growth_start = 150;
  Series data = Generate(sc);
  GlobalFitOptions options;
  options.allow_growth = false;
  auto fit = FitGlobalSequence(data, 0, 1, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_FALSE(fit->params.has_growth());
}

TEST(GlobalFit, ShocksImproveFitVsBaseOnly) {
  Series data = Generate(GrammyScenario());
  GlobalFitOptions base_only;
  base_only.allow_shocks = false;
  base_only.allow_growth = false;
  auto plain = FitGlobalSequence(data, 0, 1, base_only);
  auto full = FitGlobalSequence(data, 0, 1);
  ASSERT_TRUE(plain.ok() && full.ok());
  EXPECT_LT(full->rmse, plain->rmse * 0.8);
  EXPECT_LT(full->cost_bits, plain->cost_bits);
}

TEST(GlobalFit, EstimateMatchesSimulatedParams) {
  Series data = Generate(GrammyScenario());
  auto fit = FitGlobalSequence(data, 0, 1);
  ASSERT_TRUE(fit.ok());
  // The returned estimate is exactly the simulation of the returned
  // parameters.
  ModelParamSet params;
  params.num_keywords = 1;
  params.num_locations = 1;
  params.num_ticks = data.size();
  params.global = {fit->params};
  params.shocks = fit->shocks;
  Series sim = SimulateGlobal(params, 0, data.size());
  for (size_t t = 0; t < data.size(); ++t) {
    ASSERT_NEAR(sim[t], fit->estimate[t], 1e-9);
  }
}

TEST(GlobalFit, ParametersWithinSaneRanges) {
  Series data = Generate(GrammyScenario());
  auto fit = FitGlobalSequence(data, 0, 1);
  ASSERT_TRUE(fit.ok());
  const double peak = data.MaxValue();
  EXPECT_GE(fit->params.population, peak);
  EXPECT_GT(fit->params.beta, 0.0);
  EXPECT_LE(fit->params.beta, 5.0);
  EXPECT_GT(fit->params.delta, 0.0);
  EXPECT_LE(fit->params.delta, 1.0);
  EXPECT_GT(fit->params.gamma, 0.0);
  EXPECT_LE(fit->params.gamma, 1.0);
}

TEST(GlobalFit, RejectsTooShortSeries) {
  EXPECT_EQ(FitGlobalSequence(Series(8), 0, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GlobalFit, HandlesMissingValues) {
  GeneratorConfig config = SmallConfig();
  config.missing_rate = 0.1;
  auto data = GenerateGlobalSequence(GrammyScenario(), config);
  ASSERT_TRUE(data.ok());
  auto fit = FitGlobalSequence(*data, 0, 1);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  const double range = data->MaxValue() - data->MinValue();
  EXPECT_LT(fit->rmse, 0.2 * range);
}

TEST(GlobalFitTensor, FitsEveryKeyword) {
  GeneratorConfig config = SmallConfig();
  auto generated =
      GenerateTensor({GrammyScenario(), EbolaScenario()}, config);
  ASSERT_TRUE(generated.ok());
  auto params = GlobalFit(generated->tensor);
  ASSERT_TRUE(params.ok()) << params.status().ToString();
  EXPECT_EQ(params->global.size(), 2u);
  EXPECT_EQ(params->num_keywords, 2u);
  // Shocks are tagged with their keyword.
  for (const Shock& s : params->shocks) {
    EXPECT_LT(s.keyword, 2u);
  }
}

TEST(GlobalFitTensor, RejectsEmptyTensor) {
  EXPECT_EQ(GlobalFit(ActivityTensor()).status().code(),
            StatusCode::kInvalidArgument);
}

/// Property sweep: the annual-event scenario is recovered across seeds —
/// the detector is not tuned to one noise draw.
class GlobalFitSeedProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GlobalFitSeedProperty, AnnualCycleAcrossSeeds) {
  Series data = Generate(GrammyScenario(), GetParam());
  auto fit = FitGlobalSequence(data, 0, 1);
  ASSERT_TRUE(fit.ok());
  bool found = false;
  for (const Shock& s : fit->shocks) {
    if (s.IsCyclic() && s.period >= 50 && s.period <= 54) found = true;
  }
  EXPECT_TRUE(found) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobalFitSeedProperty,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace dspot
