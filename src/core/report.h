#ifndef DSPOT_CORE_REPORT_H_
#define DSPOT_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/params.h"

namespace dspot {

/// Human-readable reporting of fitted Δ-SPOT models: the "sense-making"
/// output of the paper (Q1) — which events happened, when, how often, how
/// strongly, and where.

/// Maps integer time-ticks onto a calendar axis. The defaults match the
/// paper's GoogleTrends axis: weekly ticks, tick 0 = January 2004.
struct CalendarConfig {
  size_t ticks_per_year = 52;
  int start_year = 2004;
};

/// "2008-Aug"-style label for a tick.
std::string TickToCalendar(size_t tick, const CalendarConfig& calendar = {});

/// One-line human description of a shock, e.g.
/// "cyclic event every ~2 year(s) from 2005-Jul, 3 ticks wide,
///  strength 3.27 (5 occurrences)".
std::string DescribeShock(const Shock& shock,
                          const CalendarConfig& calendar = {});

/// One detected event in report form.
struct EventSummary {
  size_t keyword = 0;
  bool cyclic = false;
  size_t start = 0;
  size_t period = 0;  ///< 0 for one-shot
  size_t width = 1;
  double strength = 0.0;
  size_t occurrences = 0;
  std::string description;
};

/// Flattens the shock tensor of `params` into per-event summaries,
/// strongest first.
std::vector<EventSummary> SummarizeEvents(const ModelParamSet& params,
                                          const CalendarConfig& calendar = {});

/// Renders a full multi-line report of the parameter set: per-keyword base
/// dynamics, growth effects and the event inventory. `keyword_names` may
/// be empty (indices are used).
std::string RenderReport(const ModelParamSet& params,
                         const std::vector<std::string>& keyword_names = {},
                         const CalendarConfig& calendar = {});

}  // namespace dspot

#endif  // DSPOT_CORE_REPORT_H_
