// Tests for src/tensor/event_log (raw-record aggregation) and
// src/tensor/normalization (Trends-style scaling).

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "tensor/event_log.h"
#include "tensor/normalization.h"

namespace dspot {
namespace {

TEST(EventLog, AggregatesCountsIntoBuckets) {
  std::vector<EventRecord> records = {
      {"ebola", "US", 0},
      {"ebola", "US", 3},       // same bucket with resolution 7
      {"ebola", "US", 7},       // next bucket
      {"ebola", "JP", 8},
      {"grammy", "US", 14, 5.0},  // pre-aggregated weight
  };
  AggregationConfig config;
  config.ticks_resolution = 7;
  auto tensor = AggregateEvents(records, config);
  ASSERT_TRUE(tensor.ok()) << tensor.status().ToString();
  EXPECT_EQ(tensor->num_keywords(), 2u);
  EXPECT_EQ(tensor->num_locations(), 2u);
  EXPECT_EQ(tensor->num_ticks(), 3u);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(tensor->at(1, 0, 2), 5.0);
  EXPECT_EQ(tensor->KeywordIndex("grammy"), 1u);
}

TEST(EventLog, OriginShiftsTickZero) {
  AggregationConfig config;
  config.ticks_resolution = 10;
  config.origin = 100;
  auto tensor = AggregateEvents({{"a", "US", 125}}, config);
  ASSERT_TRUE(tensor.ok());
  EXPECT_EQ(tensor->num_ticks(), 3u);  // tick (125-100)/10 = 2
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 2), 1.0);
}

TEST(EventLog, RejectsPreOriginRecords) {
  AggregationConfig config;
  config.origin = 100;
  EXPECT_EQ(AggregateEvents({{"a", "US", 50}}, config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EventLog, RejectsEmptyFields) {
  EXPECT_FALSE(AggregateEvents({{"", "US", 5}}).ok());
  EXPECT_FALSE(AggregateEvents({{"a", "", 5}}).ok());
}

TEST(EventLog, MaxTicksCapDrops) {
  AggregationConfig config;
  config.ticks_resolution = 1;
  config.max_ticks = 10;
  EventAggregator aggregator(config);
  ASSERT_TRUE(aggregator.Add({"a", "US", 5}).ok());
  ASSERT_TRUE(aggregator.Add({"a", "US", 50}).ok());  // dropped silently
  EXPECT_EQ(aggregator.dropped(), 1u);
  EXPECT_EQ(aggregator.accepted(), 1u);
  auto tensor = aggregator.Build();
  ASSERT_TRUE(tensor.ok());
  EXPECT_EQ(tensor->num_ticks(), 6u);
}

TEST(EventLog, EmptyBuildFails) {
  EventAggregator aggregator(AggregationConfig{});
  EXPECT_EQ(aggregator.Build().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EventLog, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/events.csv";
  {
    std::ofstream os(path);
    os << "keyword,location,timestamp,count\n";
    os << "ebola,US,0\n";
    os << "ebola,US,6\n";
    os << "ebola,JP,8,2.5\n";
  }
  AggregationConfig config;
  config.ticks_resolution = 7;
  auto tensor = LoadAndAggregateEventsCsv(path, config);
  ASSERT_TRUE(tensor.ok()) << tensor.status().ToString();
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 1, 1), 2.5);
}

TEST(EventLog, CsvRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/events_bad.csv";
  {
    std::ofstream os(path);
    os << "keyword,location,timestamp\n";
    os << "ebola,US,notanumber\n";
  }
  const Status status = LoadAndAggregateEventsCsv(path).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find(path + ":2"), std::string::npos)
      << status.message();
}

TEST(EventLog, CsvSkipBadRowsAggregatesTheRest) {
  const std::string path = ::testing::TempDir() + "/events_lenient.csv";
  {
    std::ofstream os(path);
    os << "keyword,location,timestamp\n";
    os << "ebola,US,0\n";
    os << "ebola,US,12abc\n";  // trailing garbage
    os << "ebola,US\n";        // missing timestamp
    os << "ebola,US,1\n";
  }
  CsvReadOptions read_options;
  read_options.skip_bad_rows = true;
  size_t skipped = 0;
  read_options.skipped_rows = &skipped;
  auto tensor =
      LoadAndAggregateEventsCsv(path, AggregationConfig(), read_options);
  ASSERT_TRUE(tensor.ok()) << tensor.status().ToString();
  EXPECT_EQ(skipped, 2u);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(tensor->at(0, 0, 1), 1.0);
}

TEST(Normalization, SeriesRoundTrip) {
  Series s(std::vector<double>{10, 20, 50});
  ScaleInfo info;
  Series normalized = NormalizeToMax(s, &info);
  EXPECT_DOUBLE_EQ(normalized[2], 100.0);
  EXPECT_DOUBLE_EQ(normalized[0], 20.0);
  Series back = Denormalize(normalized, info);
  for (size_t t = 0; t < s.size(); ++t) {
    EXPECT_NEAR(back[t], s[t], 1e-12);
  }
}

TEST(Normalization, DegenerateSeriesUnchanged) {
  Series zeros(std::vector<double>{0, 0});
  ScaleInfo info;
  Series normalized = NormalizeToMax(zeros, &info);
  EXPECT_DOUBLE_EQ(info.factor, 1.0);
  EXPECT_DOUBLE_EQ(normalized[0], 0.0);
}

TEST(Normalization, MissingEntriesPreserved) {
  Series s(std::vector<double>{kMissingValue, 50.0});
  Series normalized = NormalizeToMax(s, nullptr);
  EXPECT_TRUE(IsMissing(normalized[0]));
  EXPECT_DOUBLE_EQ(normalized[1], 100.0);
}

TEST(Normalization, TensorPerKeywordSharedFactor) {
  ActivityTensor tensor(2, 2, 2);
  tensor.at(0, 0, 0) = 10.0;  // keyword 0: max 40
  tensor.at(0, 1, 1) = 40.0;
  tensor.at(1, 0, 0) = 400.0;  // keyword 1: max 400
  std::vector<ScaleInfo> infos;
  ActivityTensor normalized = NormalizeTensorPerKeyword(tensor, &infos);
  ASSERT_EQ(infos.size(), 2u);
  // Keyword 0: both locations scaled by the same factor 2.5.
  EXPECT_DOUBLE_EQ(normalized.at(0, 0, 0), 25.0);
  EXPECT_DOUBLE_EQ(normalized.at(0, 1, 1), 100.0);
  // Keyword 1 scaled independently.
  EXPECT_DOUBLE_EQ(normalized.at(1, 0, 0), 100.0);
  // Local shares within a keyword are preserved.
  EXPECT_DOUBLE_EQ(normalized.at(0, 1, 1) / normalized.at(0, 0, 0),
                   tensor.at(0, 1, 1) / tensor.at(0, 0, 0));
}

}  // namespace
}  // namespace dspot
