#include "common/status.h"

namespace dspot {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dspot
