// Tests for src/core/impute: model-based missing-value filling.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

#include "core/dspot.h"
#include "core/impute.h"
#include "core/simulate.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

TEST(Impute, FillsOnlyMissingTicks) {
  ModelParamSet params;
  params.num_keywords = 1;
  params.num_locations = 1;
  params.num_ticks = 50;
  KeywordGlobalParams g;
  g.population = 100.0;
  g.beta = 0.5;
  g.delta = 0.4;
  g.gamma = 0.3;
  g.i0 = 1.0;
  params.global = {g};

  Series data = SimulateGlobal(params, 0, 50);
  data[10] = kMissingValue;
  data[20] = kMissingValue;
  const double observed_before = data[11];

  auto imputed = ImputeGlobalSequence(data, params, 0);
  ASSERT_TRUE(imputed.ok());
  EXPECT_TRUE(imputed->IsObserved(10));
  EXPECT_TRUE(imputed->IsObserved(20));
  EXPECT_DOUBLE_EQ((*imputed)[11], observed_before);
  // The filled value is the model's estimate.
  const Series estimate = SimulateGlobal(params, 0, 50);
  EXPECT_DOUBLE_EQ((*imputed)[10], estimate[10]);
}

TEST(Impute, BadKeywordIndex) {
  ModelParamSet params;
  params.global.resize(1);
  EXPECT_EQ(ImputeGlobalSequence(Series(10), params, 5).status().code(),
            StatusCode::kOutOfRange);
}

TEST(Impute, TensorRequiresMatchingParams) {
  ActivityTensor tensor(2, 2, 30);
  ModelParamSet params;
  params.global.resize(1);
  params.num_ticks = 30;
  EXPECT_EQ(ImputeTensor(tensor, params).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Impute, TensorRequiresLocalFitForMultiLocation) {
  ActivityTensor tensor(1, 3, 30);
  ModelParamSet params;
  params.global.resize(1);
  params.num_keywords = 1;
  params.num_locations = 3;
  params.num_ticks = 30;
  EXPECT_EQ(ImputeTensor(tensor, params).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Impute, EndToEndRecoversHiddenValues) {
  // Generate clean data, hide 10% of it, fit, impute, and compare the
  // imputed entries against the hidden truth: imputation error should be
  // of the same order as the observation noise, far below the data range.
  GeneratorConfig clean_config = GoogleTrendsConfig(13);
  clean_config.n_ticks = 260;
  clean_config.num_locations = 4;
  clean_config.num_outlier_locations = 0;
  auto clean = GenerateTensor({GrammyScenario()}, clean_config);
  ASSERT_TRUE(clean.ok());
  const Series truth = clean->tensor.GlobalSequence(0);

  Series holey = truth;
  Random rng(77);
  std::vector<size_t> hidden;
  for (size_t t = 20; t < holey.size(); ++t) {
    if (rng.Bernoulli(0.1)) {
      holey[t] = kMissingValue;
      hidden.push_back(t);
    }
  }
  ASSERT_GT(hidden.size(), 10u);

  auto fit = FitDspotSingle(holey);
  ASSERT_TRUE(fit.ok());
  auto imputed = ImputeGlobalSequence(holey, fit->params, 0);
  ASSERT_TRUE(imputed.ok());

  double err = 0.0;
  for (size_t t : hidden) {
    err += Square((*imputed)[t] - truth[t]);
  }
  err = std::sqrt(err / static_cast<double>(hidden.size()));
  const double range = truth.MaxValue() - truth.MinValue();
  EXPECT_LT(err, 0.2 * range);
}

}  // namespace
}  // namespace dspot
