#ifndef DSPOT_DATAGEN_GENERATOR_H_
#define DSPOT_DATAGEN_GENERATOR_H_

#include <vector>

#include "common/statusor.h"
#include "datagen/scenario.h"
#include "linalg/matrix.h"
#include "tensor/activity_tensor.h"

namespace dspot {

/// Ground truth retained alongside a generated tensor, for scoring fits.
struct GeneratedTruth {
  /// Per keyword, per shock spec: the per-occurrence strengths actually
  /// used at the global level (after jitter).
  std::vector<std::vector<std::vector<double>>> shock_strengths;
  /// Per keyword x location population (absolute).
  Matrix local_population;
  /// Per location: true iff the location was generated as an outlier.
  std::vector<bool> is_outlier;
};

struct GeneratedTensor {
  ActivityTensor tensor;
  GeneratedTruth truth;
};

/// Generates a synthetic activity tensor from ground-truth scenarios: each
/// keyword's SIV dynamics are simulated per location with Zipf population
/// shares, per-occurrence jittered shock strengths, Bernoulli shock
/// participation, additive Gaussian noise (clipped at zero) and optional
/// missing values. Deterministic given config.seed.
StatusOr<GeneratedTensor> GenerateTensor(
    const std::vector<KeywordScenario>& scenarios,
    const GeneratorConfig& config);

/// Single-keyword, single-location convenience: the noisy global sequence
/// of `scenario` (sums the generated locations).
StatusOr<Series> GenerateGlobalSequence(const KeywordScenario& scenario,
                                        const GeneratorConfig& config);

}  // namespace dspot

#endif  // DSPOT_DATAGEN_GENERATOR_H_
