#ifndef DSPOT_SNAPSHOT_CODEC_H_
#define DSPOT_SNAPSHOT_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace dspot {

/// Endian-stable primitives for the snapshot payload. Every multi-byte
/// value is written little-endian byte by byte, so files are identical
/// across hosts; doubles travel as their IEEE-754 bit pattern.

/// Appends primitives to a growing byte buffer.
class ByteWriter {
 public:
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutDouble(double v);
  /// u64 length prefix + raw bytes.
  void PutString(const std::string& s);
  void PutBytes(const void* data, size_t n);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t>&& TakeBytes() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Reads primitives back, tracking the byte offset so corruption errors
/// can say exactly where decoding stopped. Reads past the end return
/// DataLoss with "<context>:<offset>" location information; `context` is
/// typically the file path.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size, std::string context)
      : data_(data), size_(size), context_(std::move(context)) {}

  StatusOr<uint32_t> GetU32();
  StatusOr<uint64_t> GetU64();
  StatusOr<double> GetDouble();
  StatusOr<std::string> GetString();

  /// Like GetU64, but additionally rejects values above `max` — the guard
  /// that keeps a corrupted length prefix from driving a multi-gigabyte
  /// allocation before the checksum would have caught it.
  StatusOr<uint64_t> GetCount(uint64_t max, const char* what);

  size_t offset() const { return offset_; }
  size_t remaining() const { return size_ - offset_; }

  /// DataLoss tagged with the current offset ("<context>: offset <o>: ...").
  Status CorruptAt(const std::string& what) const;

  /// InvalidArgument with the same location tagging as CorruptAt — for
  /// well-formed payloads that carry a value this build refuses to honor
  /// (e.g. persisted options that violate a constructor invariant).
  Status InvalidAt(const std::string& what) const;

 private:
  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
  std::string context_;
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention) of `n` bytes.
uint32_t Crc32(const uint8_t* data, size_t n);

}  // namespace dspot

#endif  // DSPOT_SNAPSHOT_CODEC_H_
