#include "linalg/solvers.h"

#include <cmath>

namespace dspot {

namespace {

/// Forward substitution: solves L y = b with lower-triangular L.
std::vector<double> ForwardSubstitute(const Matrix& l,
                                      const std::vector<double>& b) {
  const size_t n = l.rows();
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t j = 0; j < i; ++j) {
      sum -= l(i, j) * y[j];
    }
    y[i] = sum / l(i, i);
  }
  return y;
}

/// Backward substitution: solves L^T x = y with lower-triangular L.
std::vector<double> BackwardSubstituteTransposed(const Matrix& l,
                                                 const std::vector<double>& y) {
  const size_t n = l.rows();
  std::vector<double> x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t j = ii + 1; j < n; ++j) {
      sum -= l(j, ii) * x[j];
    }
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

}  // namespace

StatusOr<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("CholeskyFactor: matrix is not square");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) {
        sum -= l(i, k) * l(j, k);
      }
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return Status::NumericalError(
              "CholeskyFactor: matrix is not positive definite");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

StatusOr<std::vector<double>> CholeskySolve(const Matrix& a,
                                            const std::vector<double>& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("CholeskySolve: size mismatch");
  }
  DSPOT_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  std::vector<double> y = ForwardSubstitute(l, b);
  return BackwardSubstituteTransposed(l, y);
}

StatusOr<std::vector<double>> RegularizedLdltSolve(const Matrix& a,
                                                   const std::vector<double>& b,
                                                   double min_pivot) {
  LdltWorkspace ws;
  std::vector<double> x(a.rows());
  DSPOT_RETURN_IF_ERROR(RegularizedLdltSolveInto(a, b, x, &ws, min_pivot));
  return x;
}

Status RegularizedLdltSolveInto(const Matrix& a, std::span<const double> b,
                                std::span<double> x, LdltWorkspace* ws,
                                double min_pivot) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("RegularizedLdltSolve: not square");
  }
  if (a.rows() != b.size() || a.rows() != x.size()) {
    return Status::InvalidArgument("RegularizedLdltSolve: size mismatch");
  }
  const size_t n = a.rows();
  // A = L D L^T with unit lower-triangular L and diagonal D. Only the
  // strictly-lower entries of L are ever read, and every one of them is
  // rewritten below, so the workspace matrix needs no reset between calls.
  Matrix& l = ws->l;
  l.Resize(n, n);
  std::vector<double>& d = ws->d;
  d.resize(n);
  for (size_t j = 0; j < n; ++j) {
    double dj = a(j, j);
    for (size_t k = 0; k < j; ++k) {
      dj -= l(j, k) * l(j, k) * d[k];
    }
    if (!std::isfinite(dj)) {
      return Status::NumericalError("RegularizedLdltSolve: non-finite pivot");
    }
    if (dj < min_pivot) {
      dj = min_pivot;
    }
    d[j] = dj;
    for (size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) {
        sum -= l(i, k) * l(j, k) * d[k];
      }
      l(i, j) = sum / dj;
    }
  }
  // Solve L z = b, D w = z, L^T x = w.
  std::vector<double>& z = ws->z;
  z.resize(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t j = 0; j < i; ++j) {
      sum -= l(i, j) * z[j];
    }
    z[i] = sum;
  }
  for (size_t i = 0; i < n; ++i) {
    z[i] /= d[i];
  }
  for (size_t ii = n; ii-- > 0;) {
    double sum = z[ii];
    for (size_t j = ii + 1; j < n; ++j) {
      sum -= l(j, ii) * x[j];
    }
    x[ii] = sum;
  }
  return Status::Ok();
}

StatusOr<std::vector<double>> QrLeastSquares(const Matrix& a,
                                             const std::vector<double>& b) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument("QrLeastSquares: underdetermined system");
  }
  if (b.size() != m) {
    return Status::InvalidArgument("QrLeastSquares: size mismatch");
  }
  Matrix r = a;             // Will be transformed in place into R.
  std::vector<double> qtb = b;  // Accumulates Q^T b.
  // Householder QR.
  for (size_t k = 0; k < n; ++k) {
    // Compute the norm of the k-th column below the diagonal.
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) {
      norm += r(i, k) * r(i, k);
    }
    norm = std::sqrt(norm);
    if (norm < 1e-14) {
      return Status::NumericalError("QrLeastSquares: rank-deficient matrix");
    }
    const double alpha = (r(k, k) > 0.0) ? -norm : norm;
    std::vector<double> v(m - k, 0.0);
    v[0] = r(k, k) - alpha;
    for (size_t i = k + 1; i < m; ++i) {
      v[i - k] = r(i, k);
    }
    const double vnorm2 = [&] {
      double s = 0.0;
      for (double x : v) s += x * x;
      return s;
    }();
    if (vnorm2 > 0.0) {
      // Apply H = I - 2 v v^T / (v^T v) to R's trailing block and to qtb.
      for (size_t c = k; c < n; ++c) {
        double dot = 0.0;
        for (size_t i = k; i < m; ++i) {
          dot += v[i - k] * r(i, c);
        }
        const double f = 2.0 * dot / vnorm2;
        for (size_t i = k; i < m; ++i) {
          r(i, c) -= f * v[i - k];
        }
      }
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) {
        dot += v[i - k] * qtb[i];
      }
      const double f = 2.0 * dot / vnorm2;
      for (size_t i = k; i < m; ++i) {
        qtb[i] -= f * v[i - k];
      }
    }
  }
  // Back-substitute R x = (Q^T b)[0..n).
  std::vector<double> x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = qtb[ii];
    for (size_t j = ii + 1; j < n; ++j) {
      sum -= r(ii, j) * x[j];
    }
    if (std::fabs(r(ii, ii)) < 1e-14) {
      return Status::NumericalError("QrLeastSquares: singular R");
    }
    x[ii] = sum / r(ii, ii);
  }
  return x;
}

StatusOr<std::vector<double>> LuSolve(const Matrix& a,
                                      const std::vector<double>& b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("LuSolve: matrix is not square");
  }
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("LuSolve: size mismatch");
  }
  const size_t n = a.rows();
  Matrix lu = a;
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t k = 0; k < n; ++k) {
    // Partial pivoting.
    size_t pivot = k;
    double best = std::fabs(lu(k, k));
    for (size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best < 1e-14) {
      return Status::NumericalError("LuSolve: singular matrix");
    }
    if (pivot != k) {
      for (size_t c = 0; c < n; ++c) {
        std::swap(lu(k, c), lu(pivot, c));
      }
      std::swap(perm[k], perm[pivot]);
    }
    for (size_t i = k + 1; i < n; ++i) {
      lu(i, k) /= lu(k, k);
      const double f = lu(i, k);
      for (size_t c = k + 1; c < n; ++c) {
        lu(i, c) -= f * lu(k, c);
      }
    }
  }
  // Solve L y = P b.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[perm[i]];
    for (size_t j = 0; j < i; ++j) {
      sum -= lu(i, j) * y[j];
    }
    y[i] = sum;
  }
  // Solve U x = y.
  std::vector<double> x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t j = ii + 1; j < n; ++j) {
      sum -= lu(ii, j) * x[j];
    }
    x[ii] = sum / lu(ii, ii);
  }
  return x;
}

}  // namespace dspot
