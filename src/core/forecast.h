#ifndef DSPOT_CORE_FORECAST_H_
#define DSPOT_CORE_FORECAST_H_

#include <cstddef>

#include "common/statusor.h"
#include "core/params.h"
#include "timeseries/series.h"

namespace dspot {

/// Long-range forecasting (Section 6): the fitted dynamical system is
/// simply run past the training range. Cyclic shocks keep recurring —
/// future occurrences reuse the mean fitted strength of their event — and
/// the growth effect persists, so the forecast reproduces the timing,
/// duration and relative strength of upcoming events (e.g. the next
/// Grammys, every February).

/// Forecasts the global sequence of `keyword` for `horizon` ticks past the
/// training range; returns exactly those `horizon` future values.
StatusOr<Series> ForecastGlobal(const ModelParamSet& params, size_t keyword,
                                size_t horizon);

/// Same, for one (keyword, location) pair. Requires a LocalFit'd set.
StatusOr<Series> ForecastLocal(const ModelParamSet& params, size_t keyword,
                               size_t location, size_t horizon);

/// Training-range fit plus forecast in one series of length
/// params.num_ticks + horizon (convenient for plotting).
StatusOr<Series> FitAndForecastGlobal(const ModelParamSet& params,
                                      size_t keyword, size_t horizon);

}  // namespace dspot

#endif  // DSPOT_CORE_FORECAST_H_
