#!/usr/bin/env bash
# dspot_serve TCP transport smoke: the loopback replies must be
# byte-identical to stdin/stdout-mode replies for the same request
# stream at 1 AND 8 worker threads; a hostile connection must not take
# the server down; SIGTERM must drain, write --metrics-json, and exit 0;
# and the new flags must reject bad values as usage errors.
#
# Usage: serve_net_smoke.sh <dspot_serve binary> <work dir>
set -u

SERVE="$1"
WORK="$2"

fail() {
  echo "serve_net_smoke: FAIL: $*" >&2
  [ -f "$WORK/server_err.txt" ] && sed 's/^/  server: /' "$WORK/server_err.txt" >&2
  exit 1
}

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK" || fail "cannot enter $WORK"

"$SERVE" --gen-requests 400 --gen-keywords 12 > req.bin || fail "gen-requests"
"$SERVE" --threads 1 < req.bin > baseline.bin 2> /dev/null \
  || fail "stdin-mode serve"

SERVER_PID=""
start_server() {
  rm -f port.txt
  "$SERVE" --listen 0 --port-file port.txt "$@" 2> server_err.txt &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [ -s port.txt ] && break
    sleep 0.1
  done
  [ -s port.txt ] || fail "server did not publish a port"
  PORT=$(cat port.txt)
}

stop_server() {
  kill -TERM "$SERVER_PID" 2> /dev/null
  wait "$SERVER_PID"
  local rc=$?
  [ "$rc" -eq 0 ] || fail "server exited $rc after SIGTERM"
}

# --- determinism: TCP replies == stdin replies, at 1 and 8 threads -----------
start_server --threads 1
"$SERVE" --connect 127.0.0.1:"$PORT" < req.bin > tcp1.bin \
  || fail "client against 1-thread server"
stop_server
cmp -s baseline.bin tcp1.bin \
  || fail "1-thread TCP replies differ from stdin-mode replies"

# --- 8 threads + quotas + a hostile connection + SIGTERM metrics flush -------
# The quota must exceed the client's pipeline depth (400 requests in one
# pipe): determinism holds only for request streams that are never shed.
start_server --threads 8 --tenant-quota 1024 --metrics-json metrics.json
# Desynchronized garbage on one connection: that conn dies, the server lives.
head -c 64 /dev/urandom | "$SERVE" --connect 127.0.0.1:"$PORT" \
  > /dev/null 2> /dev/null
"$SERVE" --connect 127.0.0.1:"$PORT" --tenant smoke < req.bin > tcp8.bin \
  || fail "client against 8-thread server (after hostile conn)"
stop_server
cmp -s baseline.bin tcp8.bin \
  || fail "8-thread TCP replies differ from stdin-mode replies"
[ -s metrics.json ] || fail "--metrics-json not written on SIGTERM"
grep -q '"serve\.' metrics.json || fail "metrics.json has no serve metrics"

# --- SIGTERM drain in stdin mode also writes metrics and exits 0 -------------
rm -f fifo stdin_metrics.json
mkfifo fifo
"$SERVE" --metrics-json stdin_metrics.json < fifo > /dev/null 2> /dev/null &
STDIN_PID=$!
exec 3> fifo
head -c 512 req.bin >&3   # some whole frames, server mid-stream
sleep 0.5
kill -TERM "$STDIN_PID"
sleep 0.2
exec 3>&-
wait "$STDIN_PID" || fail "stdin-mode server exited nonzero after SIGTERM"
[ -s stdin_metrics.json ] || fail "stdin-mode metrics not written on SIGTERM"

# --- strict flag rejection ---------------------------------------------------
"$SERVE" --listen 99999 2> /dev/null < /dev/null \
  && fail "--listen 99999 was accepted"
"$SERVE" --connect nowhere 2> /dev/null < /dev/null \
  && fail "--connect nowhere was accepted"
"$SERVE" --connect 127.0.0.1:1 --tenant 'has space' 2> /dev/null < /dev/null \
  && fail "--tenant with a space was accepted"
"$SERVE" --max-conns 0 --listen 0 2> /dev/null < /dev/null \
  && fail "--max-conns 0 was accepted"

echo "serve_net_smoke: OK"
