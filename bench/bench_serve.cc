// dspot_serve load benchmark: primes a spill-backed ModelRegistry with
// ~100k synthetic single-keyword models under a byte budget ~10x smaller
// than the full model set, then drives a deterministic mixed workload
// (~90% forecast / 8% outlier-score / 2% warm refit) through ServeEngine
// as a closed-loop client with a bounded in-flight window. Reports QPS,
// client-observed p50/p99 latency at 1/8/16 worker threads, and the
// eviction/reload churn the budget forces — then checks the reply bytes
// (CRC32 over the canonical wire payloads, in request-id order) are
// bit-identical across thread counts. Emits BENCH_serve.json for CI;
// exits 1 if the 1-thread and 8-thread runs diverge.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/parse_util.h"
#include "serve/model_registry.h"
#include "serve/net_server.h"
#include "serve/protocol.h"
#include "serve/serve_engine.h"
#include "snapshot/codec.h"

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>
#endif

namespace dspot {
namespace {

/// In-flight request window of the closed-loop client. Must stay well
/// below ServeOptions::queue_cap: the determinism contract requires that
/// the admission queue never overflows (shedding depends on timing).
constexpr size_t kWindow = 256;
constexpr size_t kQueueCap = 4096;
constexpr uint64_t kFitTicks = 64;
constexpr uint64_t kHorizon = 8;

double ElapsedMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// splitmix64: cheap, deterministic request-stream randomness.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// A synthetic fitted model for keyword index `i` — the bench measures
/// serving (registry traffic + simulation), not fitting, so models are
/// constructed directly like serve_test does.
ServedModel MakeModel(size_t i) {
  const double seed = static_cast<double>(i % 997);
  ServedModel model;
  model.keyword = "kw" + std::to_string(i);
  model.params.population = 800.0 + seed;
  model.params.beta = 0.15 + seed / 4000.0;
  model.params.delta = 0.11;
  model.params.gamma = 0.07;
  model.params.i0 = 2.0;
  model.params.growth_rate = 0.4 + seed / 2000.0;
  model.params.growth_start = 24 + (i % 16);
  Shock shock;
  shock.keyword = 0;
  shock.period = 7 + (i % 5);
  shock.start = 3 + (i % 4);
  shock.width = 2;
  shock.base_strength = 1.2 + seed / 200.0;
  shock.global_strengths = {1.4, 1.6, 1.4};
  model.shocks.push_back(shock);
  model.fit_ticks = kFitTicks;
  model.rmse = 2.5 + seed / 100.0;
  model.cost_bits = 700.0 + seed;
  return model;
}

/// Deterministic activity series for refit/outlier requests; the phase is
/// derived from the request index so every run generates the same stream.
std::vector<double> RequestSeries(size_t n, uint64_t salt) {
  const double phase =
      static_cast<double>(salt % 628) / 100.0;  // [0, 2*pi)
  std::vector<double> values(n);
  for (size_t t = 0; t < n; ++t) {
    values[t] = 30.0 + 8.0 * std::sin(0.9 * static_cast<double>(t) + phase);
  }
  return values;
}

/// The r-th request of the workload — a pure function of (r, keywords).
ServeRequest MakeRequest(size_t r, size_t num_keywords) {
  const uint64_t h = Mix(static_cast<uint64_t>(r) + 1);
  ServeRequest request;
  request.id = static_cast<uint64_t>(r) + 1;
  request.keyword = "kw" + std::to_string(h % num_keywords);
  const uint64_t roll = Mix(h) % 100;
  if (roll < 90) {
    request.op = ServeOp::kForecast;
    request.horizon = kHorizon;
  } else if (roll < 98) {
    request.op = ServeOp::kOutlierScore;
    request.values = RequestSeries(32, h);
  } else {
    request.op = ServeOp::kRefit;
    // More ticks than the stored fit so the refit warm-starts.
    request.values = RequestSeries(kFitTicks + 8, h);
  }
  return request;
}

struct RunResult {
  bool ok = false;
  double prime_ms = 0.0;  ///< Put of every model (includes all spills)
  double wall_ms = 0.0;   ///< workload only
  double qps = 0.0;
  double p50_ms = 0.0;  ///< all ops, client-observed (submit -> reply)
  double p99_ms = 0.0;
  double forecast_p50_ms = 0.0;
  double forecast_p99_ms = 0.0;
  uint64_t errors = 0;      ///< replies with a non-OK status
  uint64_t evictions = 0;   ///< during the workload (not priming)
  uint64_t reloads = 0;
  uint32_t reply_crc = 0;   ///< CRC32 of reply payloads in id order
};

double Percentile(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t idx = std::min(
      sorted_in_place->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_in_place->size())));
  return (*sorted_in_place)[idx];
}

RunResult RunServe(size_t num_keywords, size_t num_requests, size_t threads,
                   uint64_t budget_bytes, const std::string& spill_dir) {
  RunResult result;
  std::filesystem::remove_all(spill_dir);
  std::filesystem::create_directories(spill_dir);

  RegistryOptions roptions;
  roptions.num_shards = 16;
  roptions.max_resident_bytes = budget_bytes;
  roptions.spill_dir = spill_dir;
  ModelRegistry registry(roptions);

  const auto prime0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < num_keywords; ++i) {
    const Status put = registry.Put(MakeModel(i));
    if (!put.ok()) {
      std::fprintf(stderr, "prime put failed: %s\n", put.ToString().c_str());
      return result;
    }
  }
  result.prime_ms = ElapsedMs(prime0);
  const RegistryStats primed = registry.stats();

  ServeOptions soptions;
  soptions.num_threads = threads;
  soptions.queue_cap = kQueueCap;
  soptions.max_batch = 64;
  // Refits re-run the optimizer; trim the search so the 2% refit share
  // costs milliseconds, not the full offline fit budget.
  soptions.fit.max_outer_rounds = 2;
  soptions.fit.max_shocks_per_keyword = 2;
  ServeEngine engine(&registry, soptions);

  struct InFlight {
    size_t index = 0;
    bool forecast = false;
    std::chrono::steady_clock::time_point submitted;
    std::future<ServeReply> reply;
  };
  std::vector<std::vector<uint8_t>> payloads(num_requests);
  std::vector<double> latency_ms;
  std::vector<double> forecast_latency_ms;
  latency_ms.reserve(num_requests);
  std::deque<InFlight> window;
  bool failed = false;

  const auto settle = [&](InFlight& f) {
    const ServeReply reply = f.reply.get();
    const double ms = ElapsedMs(f.submitted);
    latency_ms.push_back(ms);
    if (f.forecast) forecast_latency_ms.push_back(ms);
    if (!reply.status.ok()) {
      ++result.errors;
      if (result.errors <= 3) {
        std::fprintf(stderr, "request %zu failed: %s\n", f.index + 1,
                     reply.status.ToString().c_str());
      }
      failed = true;
    }
    payloads[f.index] = EncodeReplyPayload(reply);
  };

  const auto t0 = std::chrono::steady_clock::now();
  for (size_t r = 0; r < num_requests && !failed; ++r) {
    ServeRequest request = MakeRequest(r, num_keywords);
    InFlight f;
    f.index = r;
    f.forecast = request.op == ServeOp::kForecast;
    f.submitted = std::chrono::steady_clock::now();
    f.reply = engine.Submit(std::move(request));
    window.push_back(std::move(f));
    if (window.size() >= kWindow) {
      settle(window.front());
      window.pop_front();
    }
  }
  while (!window.empty()) {
    settle(window.front());
    window.pop_front();
  }
  result.wall_ms = ElapsedMs(t0);
  engine.Stop();
  if (failed) return result;

  const RegistryStats after = registry.stats();
  result.evictions = after.evictions - primed.evictions;
  result.reloads = after.reloads - primed.reloads;
  result.qps = result.wall_ms > 0.0
                   ? static_cast<double>(num_requests) * 1000.0 / result.wall_ms
                   : 0.0;
  result.p50_ms = Percentile(&latency_ms, 0.50);
  result.p99_ms = Percentile(&latency_ms, 0.99);
  result.forecast_p50_ms = Percentile(&forecast_latency_ms, 0.50);
  result.forecast_p99_ms = Percentile(&forecast_latency_ms, 0.99);

  std::vector<uint8_t> digest;
  for (const auto& payload : payloads) {
    digest.insert(digest.end(), payload.begin(), payload.end());
  }
  result.reply_crc = Crc32(digest.data(), digest.size());
  result.ok = true;
  return result;
}

#ifdef __linux__

/// Blocking loopback socket client plumbing for the TCP legs.
bool NetSendAll(int fd, const uint8_t* p, size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

/// Blocks until one whole frame payload arrives (false: EOF or error).
bool NetRecvFrame(int fd, FrameAssembler* assembler,
                  std::vector<uint8_t>* payload) {
  uint8_t chunk[16384];
  for (;;) {
    StatusOr<bool> have = assembler->Next(payload);
    if (!have.ok() || *have) return have.ok();
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    assembler->Append(chunk, static_cast<size_t>(n));
  }
}

int NetConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool NetSendFrame(int fd, const std::vector<uint8_t>& payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint8_t prefix[4] = {static_cast<uint8_t>(len & 0xFF),
                             static_cast<uint8_t>((len >> 8) & 0xFF),
                             static_cast<uint8_t>((len >> 16) & 0xFF),
                             static_cast<uint8_t>((len >> 24) & 0xFF)};
  return NetSendAll(fd, prefix, sizeof(prefix)) &&
         NetSendAll(fd, payload.data(), payload.size());
}

struct NetRunResult {
  bool ok = false;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;  ///< client-observed over the socket
  double p99_ms = 0.0;
  uint64_t errors = 0;
  uint32_t reply_crc = 0;  ///< raw reply payload bytes in arrival order
};

/// The same closed-loop workload as RunServe, but spoken over a loopback
/// TCP connection to a NetServer — one pipelined connection, a bounded
/// in-flight window, latencies measured send-to-receive. Replies arrive
/// in request order (the transport reorders), so the arrival-order CRC is
/// directly comparable with the engine-direct runs' id-order CRC.
NetRunResult RunServeNet(size_t num_keywords, size_t num_requests,
                         size_t threads, uint64_t budget_bytes,
                         const std::string& spill_dir) {
  NetRunResult result;
  std::filesystem::remove_all(spill_dir);
  std::filesystem::create_directories(spill_dir);

  RegistryOptions roptions;
  roptions.num_shards = 16;
  roptions.max_resident_bytes = budget_bytes;
  roptions.spill_dir = spill_dir;
  ModelRegistry registry(roptions);
  for (size_t i = 0; i < num_keywords; ++i) {
    const Status put = registry.Put(MakeModel(i));
    if (!put.ok()) {
      std::fprintf(stderr, "net prime put failed: %s\n",
                   put.ToString().c_str());
      return result;
    }
  }

  ServeOptions soptions;
  soptions.num_threads = threads;
  soptions.queue_cap = kQueueCap;
  soptions.max_batch = 64;
  soptions.fit.max_outer_rounds = 2;
  soptions.fit.max_shocks_per_keyword = 2;
  ServeEngine engine(&registry, soptions);

  NetServerOptions noptions;
  NetServer server(&engine, noptions);
  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "net server start: %s\n", status.ToString().c_str());
    engine.Stop();
    return result;
  }
  std::thread loop([&server]() { (void)server.Run(); });

  const int fd = NetConnect(server.port());
  if (fd < 0) {
    std::fprintf(stderr, "net connect failed: %s\n", std::strerror(errno));
    server.Shutdown();
    loop.join();
    engine.Stop();
    return result;
  }

  std::deque<std::chrono::steady_clock::time_point> sent;
  std::vector<double> latency_ms;
  latency_ms.reserve(num_requests);
  FrameAssembler assembler("bench net");
  std::vector<uint8_t> payload;
  std::vector<uint8_t> digest;
  bool failed = false;
  size_t received = 0;

  const auto settle_one = [&]() {
    if (!NetRecvFrame(fd, &assembler, &payload)) {
      failed = true;
      return;
    }
    latency_ms.push_back(ElapsedMs(sent.front()));
    sent.pop_front();
    StatusOr<ServeReply> reply =
        DecodeReplyPayload(payload.data(), payload.size(), "bench net");
    if (!reply.ok()) {
      failed = true;
      return;
    }
    if (!reply->status.ok()) ++result.errors;
    digest.insert(digest.end(), payload.begin(), payload.end());
    ++received;
  };

  const auto t0 = std::chrono::steady_clock::now();
  for (size_t r = 0; r < num_requests && !failed; ++r) {
    sent.push_back(std::chrono::steady_clock::now());
    if (!NetSendFrame(fd, EncodeRequestPayload(MakeRequest(r, num_keywords)))) {
      failed = true;
      break;
    }
    if (sent.size() >= kWindow) settle_one();
  }
  while (!failed && received < num_requests) settle_one();
  result.wall_ms = ElapsedMs(t0);

  ::shutdown(fd, SHUT_WR);
  ::close(fd);
  server.Shutdown();
  loop.join();
  engine.Stop();
  if (failed || result.errors > 0) {
    std::fprintf(stderr, "net leg failed (%" PRIu64 " error replies)\n",
                 result.errors);
    return result;
  }
  result.qps = result.wall_ms > 0.0 ? static_cast<double>(num_requests) *
                                          1000.0 / result.wall_ms
                                    : 0.0;
  result.p50_ms = Percentile(&latency_ms, 0.50);
  result.p99_ms = Percentile(&latency_ms, 0.99);
  result.reply_crc = Crc32(digest.data(), digest.size());
  result.ok = true;
  return result;
}

struct FairnessResult {
  bool ok = false;
  uint64_t flood_total = 0;
  uint64_t flood_shed = 0;  ///< ResourceExhausted replies to the flooder
  uint64_t fair_total = 0;
  uint64_t fair_shed = 0;   ///< must stay 0: quotas isolate the flood
  double fair_p99_ms = 0.0;
  double flood_qps = 0.0;
};

/// One tenant's closed-loop connection for the fairness leg.
struct TenantClientResult {
  bool ok = false;
  uint64_t total = 0;
  uint64_t shed = 0;
  std::vector<double> latency_ms;
};

TenantClientResult RunTenantClient(uint16_t port, const std::string& tenant,
                                   size_t num_requests, size_t window,
                                   bool expensive, size_t num_keywords) {
  TenantClientResult result;
  const int fd = NetConnect(port);
  if (fd < 0) return result;
  if (!NetSendFrame(fd, EncodeHelloPayload(tenant))) {
    ::close(fd);
    return result;
  }
  std::deque<std::chrono::steady_clock::time_point> sent;
  FrameAssembler assembler("bench tenant " + tenant);
  std::vector<uint8_t> payload;
  bool failed = false;
  size_t received = 0;
  const auto settle_one = [&]() {
    if (!NetRecvFrame(fd, &assembler, &payload)) {
      failed = true;
      return;
    }
    result.latency_ms.push_back(ElapsedMs(sent.front()));
    sent.pop_front();
    StatusOr<ServeReply> reply =
        DecodeReplyPayload(payload.data(), payload.size(), "bench tenant");
    if (!reply.ok()) {
      failed = true;
      return;
    }
    if (reply->status.code() == StatusCode::kResourceExhausted) ++result.shed;
    ++received;
  };
  for (size_t r = 0; r < num_requests && !failed; ++r) {
    ServeRequest request;
    request.id = static_cast<uint64_t>(r) + 1;
    request.keyword = "kw" + std::to_string(Mix(r + 1) % num_keywords);
    if (expensive) {
      request.op = ServeOp::kRefit;
      request.values = RequestSeries(kFitTicks + 8, Mix(r + 7));
    } else {
      request.op = ServeOp::kForecast;
      request.horizon = kHorizon;
    }
    sent.push_back(std::chrono::steady_clock::now());
    if (!NetSendFrame(fd, EncodeRequestPayload(request))) {
      failed = true;
      break;
    }
    if (sent.size() >= window) settle_one();
  }
  while (!failed && received < num_requests) settle_one();
  ::shutdown(fd, SHUT_WR);
  ::close(fd);
  result.total = received;
  result.ok = !failed && received == num_requests;
  return result;
}

/// A flooding tenant pushes a deep window of expensive refits while two
/// fair tenants run shallow windows of cheap forecasts, all through one
/// quota-sliced engine. The quota must convert the flood into self-sheds:
/// the flooder loses requests, the fair tenants lose none, and fair p99
/// stays bounded by (quota x refit cost), not by the flood's backlog.
FairnessResult RunFairness(const std::string& spill_dir) {
  FairnessResult result;
  constexpr size_t kFairKeywords = 256;
  std::filesystem::remove_all(spill_dir);
  std::filesystem::create_directories(spill_dir);

  RegistryOptions roptions;
  roptions.num_shards = 8;
  roptions.max_resident_bytes = 1ull << 30;  // no eviction churn here
  roptions.spill_dir = spill_dir;
  ModelRegistry registry(roptions);
  for (size_t i = 0; i < kFairKeywords; ++i) {
    const Status put = registry.Put(MakeModel(i));
    if (!put.ok()) return result;
  }

  ServeOptions soptions;
  soptions.num_threads = 2;
  soptions.queue_cap = kQueueCap;
  soptions.max_batch = 16;
  soptions.tenant_quota = 8;  // the flood's slice of the queue
  soptions.fit.max_outer_rounds = 2;
  soptions.fit.max_shocks_per_keyword = 2;
  ServeEngine engine(&registry, soptions);

  NetServerOptions noptions;
  NetServer server(&engine, noptions);
  if (!server.Start().ok()) {
    engine.Stop();
    return result;
  }
  std::thread loop([&server]() { (void)server.Run(); });
  const uint16_t port = server.port();

  const auto flood_t0 = std::chrono::steady_clock::now();
  TenantClientResult flood;
  TenantClientResult fair_a;
  TenantClientResult fair_b;
  std::thread flood_thread([&]() {
    flood = RunTenantClient(port, "flood", 600, 256, /*expensive=*/true,
                            kFairKeywords);
  });
  std::thread fair_a_thread([&]() {
    fair_a = RunTenantClient(port, "fair-a", 400, 4, /*expensive=*/false,
                             kFairKeywords);
  });
  std::thread fair_b_thread([&]() {
    fair_b = RunTenantClient(port, "fair-b", 400, 4, /*expensive=*/false,
                             kFairKeywords);
  });
  flood_thread.join();
  const double flood_ms = ElapsedMs(flood_t0);
  fair_a_thread.join();
  fair_b_thread.join();
  server.Shutdown();
  loop.join();
  engine.Stop();

  if (!flood.ok || !fair_a.ok || !fair_b.ok) {
    std::fprintf(stderr, "fairness leg: a tenant client failed\n");
    return result;
  }
  result.flood_total = flood.total;
  result.flood_shed = flood.shed;
  result.fair_total = fair_a.total + fair_b.total;
  result.fair_shed = fair_a.shed + fair_b.shed;
  result.flood_qps = flood_ms > 0.0
                         ? static_cast<double>(flood.total) * 1000.0 / flood_ms
                         : 0.0;
  std::vector<double> fair_latency = fair_a.latency_ms;
  fair_latency.insert(fair_latency.end(), fair_b.latency_ms.begin(),
                      fair_b.latency_ms.end());
  result.fair_p99_ms = Percentile(&fair_latency, 0.99);
  result.ok = true;
  return result;
}

#endif  // __linux__

void PrintRun(size_t threads, const RunResult& r) {
  std::printf(
      "%2zu thread%s  %9.0f req/s | p50 %7.3f ms p99 %7.3f ms | forecast "
      "p50 %7.3f p99 %7.3f | evict %7llu reload %7llu | crc %08x\n",
      threads, threads == 1 ? " " : "s", r.qps, r.p50_ms, r.p99_ms,
      r.forecast_p50_ms, r.forecast_p99_ms,
      static_cast<unsigned long long>(r.evictions),
      static_cast<unsigned long long>(r.reloads), r.reply_crc);
}

void AddRow(bench::BenchJson* json, size_t threads, const RunResult& r) {
  json->AddRow();
  json->SetRow("threads", static_cast<double>(threads));
  json->SetRow("qps", r.qps);
  json->SetRow("wall_ms", r.wall_ms);
  json->SetRow("prime_ms", r.prime_ms);
  json->SetRow("p50_ms", r.p50_ms);
  json->SetRow("p99_ms", r.p99_ms);
  json->SetRow("forecast_p50_ms", r.forecast_p50_ms);
  json->SetRow("forecast_p99_ms", r.forecast_p99_ms);
  json->SetRow("evictions", static_cast<double>(r.evictions));
  json->SetRow("reloads", static_cast<double>(r.reloads));
  json->SetRow("errors", static_cast<double>(r.errors));
}

int Main(int argc, char** argv) {
  size_t num_keywords = 100000;
  size_t num_requests = 20000;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto take_value = [&](size_t* out) {
      if (i + 1 >= argc) return false;
      auto parsed = ParseInt64Text(argv[++i]);
      if (!parsed.ok() || *parsed <= 0) return false;
      *out = static_cast<size_t>(*parsed);
      return true;
    };
    if (arg == "--keywords") {
      if (!take_value(&num_keywords)) {
        std::fprintf(stderr, "bench_serve: --keywords needs a positive int\n");
        return 1;
      }
    } else if (arg == "--requests") {
      if (!take_value(&num_requests)) {
        std::fprintf(stderr, "bench_serve: --requests needs a positive int\n");
        return 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--keywords N] [--requests N]\n");
      return 1;
    }
  }

  // Budget: a tenth of the full model set, so ~90% of keywords live only
  // as spill files and the workload constantly evicts and reloads.
  uint64_t total_bytes = 0;
  for (size_t i = 0; i < num_keywords; ++i) {
    total_bytes += MakeModel(i).ResidentBytes();
  }
  const uint64_t budget = std::max<uint64_t>(total_bytes / 10, 1);
  std::printf(
      "dspot_serve: %zu keywords (%.1f MiB of models, budget %.1f MiB), "
      "%zu mixed requests (~90%% forecast / 8%% outlier / 2%% refit), "
      "window %zu\n\n",
      num_keywords, static_cast<double>(total_bytes) / (1024.0 * 1024.0),
      static_cast<double>(budget) / (1024.0 * 1024.0), num_requests, kWindow);

  const std::string spill_dir = "bench_serve_spill";
  const size_t kThreads[] = {1, 8, 16};
  RunResult runs[3];
  for (size_t t = 0; t < 3; ++t) {
    runs[t] = RunServe(num_keywords, num_requests, kThreads[t], budget,
                       spill_dir);
    if (!runs[t].ok) return 1;
    PrintRun(kThreads[t], runs[t]);
  }
  std::filesystem::remove_all(spill_dir);

  const bool deterministic = runs[0].reply_crc == runs[1].reply_crc;
  const bool deterministic_16 = runs[0].reply_crc == runs[2].reply_crc;
  std::printf("\nreplies 1 vs 8 threads: %s; 1 vs 16 threads: %s\n",
              deterministic ? "bit-identical" : "DIVERGED",
              deterministic_16 ? "bit-identical" : "DIVERGED");

  bool net_ok = true;
  bool fairness_ok = true;
#ifdef __linux__
  // Loopback TCP leg: the same workload through NetServer at 8 threads;
  // replies must be byte-identical to the engine-direct runs.
  const NetRunResult net =
      RunServeNet(num_keywords, num_requests, 8, budget, spill_dir);
  if (!net.ok) return 1;
  const bool net_deterministic = net.reply_crc == runs[0].reply_crc;
  net_ok = net_deterministic;
  std::printf(
      "\ntcp loopback  %9.0f req/s | p50 %7.3f ms p99 %7.3f ms | crc %08x "
      "(%s vs engine-direct)\n",
      net.qps, net.p50_ms, net.p99_ms, net.reply_crc,
      net_deterministic ? "bit-identical" : "DIVERGED");

  // Fairness leg: a flooding tenant against quota slicing.
  const FairnessResult fair = RunFairness(spill_dir);
  if (!fair.ok) return 1;
  fairness_ok = fair.flood_shed > 0 && fair.fair_shed == 0 &&
                fair.fair_p99_ms < 500.0;
  std::printf(
      "tenant flood  flood %" PRIu64 "/%" PRIu64 " shed, fair %" PRIu64
      "/%" PRIu64 " shed, fair p99 %7.3f ms -> %s\n",
      fair.flood_shed, fair.flood_total, fair.fair_shed, fair.fair_total,
      fair.fair_p99_ms, fairness_ok ? "quota holds" : "QUOTA FAILED");
  std::filesystem::remove_all(spill_dir);
#endif

  bench::BenchJson json("serve");
  json.Set("num_keywords", static_cast<double>(num_keywords));
  json.Set("num_requests", static_cast<double>(num_requests));
  json.Set("model_bytes", static_cast<double>(total_bytes));
  json.Set("budget_bytes", static_cast<double>(budget));
  json.Set("qps", runs[1].qps);
  json.Set("p50_ms", runs[1].p50_ms);
  json.Set("p99_ms", runs[1].p99_ms);
  json.Set("forecast_p99_ms", runs[1].forecast_p99_ms);
  json.Set("evictions", static_cast<double>(runs[1].evictions));
  json.Set("reloads", static_cast<double>(runs[1].reloads));
  json.Set("threads", 8.0);
  json.Set("deterministic", deterministic ? 1.0 : 0.0);
  json.Set("deterministic_16", deterministic_16 ? 1.0 : 0.0);
#ifdef __linux__
  json.Set("net_supported", 1.0);
  json.Set("net_qps", net.qps);
  json.Set("net_p50_ms", net.p50_ms);
  json.Set("net_p99_ms", net.p99_ms);
  json.Set("net_deterministic", net_ok ? 1.0 : 0.0);
  json.Set("flood_total", static_cast<double>(fair.flood_total));
  json.Set("flood_shed", static_cast<double>(fair.flood_shed));
  json.Set("fair_total", static_cast<double>(fair.fair_total));
  json.Set("fair_shed", static_cast<double>(fair.fair_shed));
  json.Set("fair_p99_ms", fair.fair_p99_ms);
  json.Set("flood_qps", fair.flood_qps);
  json.Set("fairness_ok", fairness_ok ? 1.0 : 0.0);
#else
  json.Set("net_supported", 0.0);
#endif
  for (size_t t = 0; t < 3; ++t) {
    AddRow(&json, kThreads[t], runs[t]);
  }
  if (json.WriteTo("BENCH_serve.json")) {
    std::printf("wrote BENCH_serve.json\n");
  }
  return (deterministic && deterministic_16 && net_ok && fairness_ok) ? 0 : 1;
}

}  // namespace
}  // namespace dspot

int main(int argc, char** argv) { return dspot::Main(argc, argv); }
