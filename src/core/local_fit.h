#ifndef DSPOT_CORE_LOCAL_FIT_H_
#define DSPOT_CORE_LOCAL_FIT_H_

#include "common/status.h"
#include "core/params.h"
#include "guard/guard.h"
#include "tensor/activity_tensor.h"

namespace dspot {

/// LOCALFIT (Algorithm 3): given the global-level parameter set produced by
/// GLOBALFIT, fits per-location parameters — the potential population
/// b^(L)_ij (B_L), the local growth rate r^(L)_ij (R_L), and the
/// per-occurrence local shock strengths s^(L) — by coordinate descent under
/// the MDL criterion. Shock *times* stay shared across locations; only the
/// participation strengths are local, which is exactly the paper's notion
/// of area specificity (P2).
struct LocalFitOptions {
  /// Coordinate-descent sweeps over all (keyword, location) pairs.
  int max_rounds = 2;
  /// Upper bound for a local shock strength.
  double max_local_strength = 50.0;
  /// Zero out local strengths whose MDL benefit does not cover their
  /// description cost (makes s^(L) sparse, as in Definition 6).
  bool sparsify = true;
  /// Minimum relative improvement for another sweep.
  double min_cost_decrease = 1e-4;
  /// Worker threads for fitting a keyword's locations concurrently
  /// (0 = hardware concurrency, 1 = serial). Location fits within a round
  /// only read the shared global parameters and write location-disjoint
  /// slots, and the round cost is reduced in location order, so the fit
  /// is bit-identical at any thread count. FitDspot plumbs
  /// DspotOptions::num_threads through this field.
  size_t num_threads = 1;
  /// Deadline/cancellation pair, checked before every per-location fit.
  /// On deadline expiry the remaining locations keep their warm-start
  /// values (volume-share initialization on the first round) and the call
  /// returns OK with health.termination == kDeadlineExceeded; on
  /// cancellation it returns Status::Cancelled. Inactive by default.
  GuardContext guard;
};

/// Fills `params->base_local`, `params->growth_local` and every shock's
/// `local_strengths` from the tensor. `params` must contain the global fit
/// for the same tensor (dimensions are checked). When `health` is
/// non-null it receives sweep count, wall time, and the termination
/// reason (kDeadlineExceeded marks a partially refined local model).
Status LocalFit(const ActivityTensor& tensor, ModelParamSet* params,
                const LocalFitOptions& options = LocalFitOptions(),
                FitHealth* health = nullptr);

}  // namespace dspot

#endif  // DSPOT_CORE_LOCAL_FIT_H_
