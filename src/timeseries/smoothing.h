#ifndef DSPOT_TIMESERIES_SMOOTHING_H_
#define DSPOT_TIMESERIES_SMOOTHING_H_

#include <cstddef>

#include "timeseries/series.h"

namespace dspot {

/// Centered moving average with the given (odd effective) window radius:
/// out[t] = mean of observed values in [t-radius, t+radius].
Series MovingAverage(const Series& s, size_t radius);

/// Exponentially weighted moving average with smoothing factor alpha in
/// (0, 1]; missing entries carry the previous smoothed value forward.
Series Ewma(const Series& s, double alpha);

/// First difference: out[t] = s[t] - s[t-1] (out[0] = 0). Missing entries
/// propagate.
Series Difference(const Series& s);

}  // namespace dspot

#endif  // DSPOT_TIMESERIES_SMOOTHING_H_
