#ifndef DSPOT_CORE_COST_H_
#define DSPOT_CORE_COST_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/params.h"
#include "core/schedule_cache.h"
#include "mdl/mdl.h"
#include "tensor/activity_tensor.h"
#include "timeseries/series.h"

namespace dspot {

/// MDL total-cost machinery of Eq. (2):
///
///   Cost_T(X; F) = log*(d) + log*(l) + log*(n)
///                + Cost_M(B_G) + Cost_M(B_L) + Cost_M(R_G) + Cost_M(R_L)
///                + Cost_M(S) + Cost_C(X | F)
///
/// All costs are in bits. The fitter accepts a richer model (an extra
/// shock, a growth term, a non-zero local strength) only when it reduces
/// the total.

/// Model-description bits of one shock. At the global level the shock pays
/// log(d) for its keyword, 3 log(n) for {t_p, t_s, t_w}, and one float per
/// occurrence strength. At the local level each non-zero entry of s^(L)
/// additionally pays (log d + log l + log n + c_F), per the paper.
double ShockModelCostBits(const Shock& shock, size_t d, size_t l, size_t n,
                          bool include_local);

/// Model bits of the full shock tensor S: log*(k) + per-shock costs.
double ShockTensorModelCostBits(const std::vector<Shock>& shocks, size_t d,
                                size_t l, size_t n, bool include_local);

/// Model bits of one keyword's global parameters (its B_G row, 4 floats,
/// plus R_G row, 2 values, plus the implementation parameter i0).
double KeywordGlobalModelCostBits(const KeywordGlobalParams& params,
                                  size_t n);

/// Global-level cost for one keyword: model bits of its parameters and
/// shocks plus the Gaussian coding cost of (data - estimate). This is the
/// objective GLOBALFIT minimizes per keyword.
double GlobalKeywordCostBits(const Series& data, const Series& estimate,
                             const KeywordGlobalParams& params,
                             const std::vector<Shock>& shocks, size_t keyword,
                             size_t d, size_t n,
                             CodingModel coding = CodingModel::kGaussian);

/// Span form (same floating-point sequence; the Series overload delegates
/// here). Lets fit loops feed cached simulation buffers without copies.
double GlobalKeywordCostBits(std::span<const double> data,
                             std::span<const double> estimate,
                             const KeywordGlobalParams& params,
                             const std::vector<Shock>& shocks, size_t keyword,
                             size_t d, size_t n,
                             CodingModel coding = CodingModel::kGaussian);

/// Local-level cost for one (keyword, location): two floats (b_L, r_L),
/// the location's share of shock strengths, and the local coding cost.
/// Used by LOCALFIT when deciding local strengths and sparsification.
double LocalSequenceCostBits(const Series& data, const Series& estimate,
                             size_t non_zero_strengths, size_t d, size_t l,
                             size_t n);
double LocalSequenceCostBits(std::span<const double> data,
                             std::span<const double> estimate,
                             size_t non_zero_strengths, size_t d, size_t l,
                             size_t n);

/// Reusable scratch for TotalCostBits: the schedule cache plus the
/// simulation / global-sequence buffers the d x l coding loop cycles
/// through. One workspace per thread; reuse across calls to keep repeated
/// MDL evaluations allocation-free.
struct CostWorkspace {
  ScheduleCache schedules;
  std::vector<double> estimate;
  std::vector<double> global_actual;
  /// Structure-of-arrays blocks for the batched global-branch coding pass:
  /// per-keyword parameter lanes plus [t * d + i]-packed schedules and
  /// output (see kernels::SimulateSivBatchInto).
  std::vector<double> batch_population;
  std::vector<double> batch_beta;
  std::vector<double> batch_delta;
  std::vector<double> batch_gamma;
  std::vector<double> batch_i0;
  std::vector<double> batch_epsilon;
  std::vector<double> batch_eta;
  std::vector<double> batch_out;
};

/// The full Eq. (2) over a tensor and a complete parameter set (global
/// estimates from SimulateGlobal, local from SimulateLocal).
double TotalCostBits(const ActivityTensor& tensor,
                     const ModelParamSet& params);

/// Workspace form: identical result, but simulations write into
/// `workspace` buffers and sequences are read through zero-copy tensor
/// views, so steady-state evaluations do not allocate.
double TotalCostBits(const ActivityTensor& tensor, const ModelParamSet& params,
                     CostWorkspace* workspace);

}  // namespace dspot

#endif  // DSPOT_CORE_COST_H_
