#include "timeseries/stats.h"

#include <algorithm>
#include <cmath>

namespace dspot {

std::vector<double> Autocorrelation(const Series& s, size_t max_lag) {
  const Series filled = s.Interpolated();
  const size_t n = filled.size();
  std::vector<double> acf(max_lag + 1, 0.0);
  if (n == 0) {
    return acf;
  }
  const double mu = filled.MeanValue();
  if (!std::isfinite(mu)) {
    // Non-finite samples (inf spikes survive interpolation, which only
    // patches NaN) make every lag NaN; an all-zero ACF says "no structure"
    // instead of poisoning period detection downstream.
    return acf;
  }
  double denom = 0.0;
  for (size_t t = 0; t < n; ++t) {
    denom += Square(filled[t] - mu);
  }
  // `!(denom > 0)` rather than `denom <= 0`: a NaN/inf denominator must
  // take this early-out too, not fall through to NaN ratios.
  if (!(denom > 0.0) || !std::isfinite(denom)) {
    return acf;
  }
  for (size_t lag = 0; lag <= max_lag && lag < n; ++lag) {
    double num = 0.0;
    for (size_t t = lag; t < n; ++t) {
      num += (filled[t] - mu) * (filled[t - lag] - mu);
    }
    acf[lag] = num / denom;
  }
  return acf;
}

std::vector<double> PeriodogramByPeriod(const Series& s, size_t max_period) {
  const Series filled = s.Interpolated();
  const size_t n = filled.size();
  std::vector<double> power(max_period + 1, 0.0);
  if (n < 4) {
    return power;
  }
  const double mu = filled.MeanValue();
  if (!std::isfinite(mu)) {
    return power;
  }
  constexpr double kTwoPi = 6.283185307179586;
  for (size_t period = 2; period <= max_period && period <= n; ++period) {
    const double omega = kTwoPi / static_cast<double>(period);
    double re = 0.0;
    double im = 0.0;
    for (size_t t = 0; t < n; ++t) {
      const double v = filled[t] - mu;
      re += v * std::cos(omega * static_cast<double>(t));
      im += v * std::sin(omega * static_cast<double>(t));
    }
    power[period] = (re * re + im * im) / static_cast<double>(n);
  }
  return power;
}

std::vector<size_t> CandidatePeriods(const Series& s, size_t max_period,
                                     double min_acf, size_t dedup_window,
                                     size_t max_candidates) {
  max_period = std::min(max_period, s.size() / 2);
  if (max_period < 2) {
    return {};
  }
  const std::vector<double> acf = Autocorrelation(s, max_period);
  // Local maxima of the ACF above the threshold.
  struct Peak {
    size_t lag;
    double value;
  };
  std::vector<Peak> peaks;
  for (size_t lag = 2; lag + 1 < acf.size(); ++lag) {
    if (std::isfinite(acf[lag]) && acf[lag] >= min_acf &&
        acf[lag] >= acf[lag - 1] && acf[lag] >= acf[lag + 1]) {
      peaks.push_back({lag, acf[lag]});
    }
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.value > b.value; });
  std::vector<size_t> out;
  for (const Peak& p : peaks) {
    bool dominated = false;
    for (size_t chosen : out) {
      const size_t d = p.lag > chosen ? p.lag - chosen : chosen - p.lag;
      if (d <= dedup_window) {
        dominated = true;
        break;
      }
      // Also drop near-multiples of an already chosen (stronger) period:
      // lag 2P echoes period P in the ACF.
      const size_t mod = p.lag % chosen;
      if (chosen >= 4 && (mod <= dedup_window || chosen - mod <= dedup_window)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      out.push_back(p.lag);
      if (out.size() >= max_candidates) break;
    }
  }
  return out;
}

std::vector<double> ZScores(const Series& s) {
  std::vector<double> out(s.size(), kMissingValue);
  const double mu = s.MeanValue();
  const double sd = StdDev(s.values());
  if (!(sd > 0.0) || !std::isfinite(sd) || !std::isfinite(mu)) {
    for (size_t t = 0; t < s.size(); ++t) {
      if (s.IsObserved(t)) out[t] = 0.0;
    }
    return out;
  }
  for (size_t t = 0; t < s.size(); ++t) {
    if (s.IsObserved(t)) {
      out[t] = (s[t] - mu) / sd;
    }
  }
  return out;
}

}  // namespace dspot
