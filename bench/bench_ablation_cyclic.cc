// Ablation D2: cyclic shock sharing vs independent one-shot shocks. A
// cyclic event (t_p, t_s, t_w, strengths) describes all of its
// occurrences at once AND keeps firing in forecasts; with cyclic
// hypotheses disabled, every spike must be bought as its own one-shot and
// the future contains no events at all — exactly the failure the paper
// attributes to FUNNEL.

#include <cstdio>

#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

int Run() {
  std::printf("=== Ablation D2 — cyclic shocks vs one-shot-only ===\n\n");
  GeneratorConfig config = GoogleTrendsConfig();
  auto full = GenerateGlobalSequence(GrammyScenario(), config);
  if (!full.ok()) {
    std::fprintf(stderr, "generate: %s\n", full.status().ToString().c_str());
    return 1;
  }
  const Series train = full->Slice(0, 400);
  const Series test = full->Slice(400, full->size());

  GlobalFitOptions cyclic;  // default
  GlobalFitOptions oneshot = cyclic;
  oneshot.detection.allow_cyclic = false;
  oneshot.max_shocks_per_keyword = 16;

  std::printf("%-24s %8s %12s %14s\n", "variant", "#shocks", "fit RMSE",
              "forecast RMSE");
  for (const auto& [label, options] :
       {std::pair<const char*, GlobalFitOptions>{"cyclic (Δ-SPOT)", cyclic},
        std::pair<const char*, GlobalFitOptions>{"one-shot only", oneshot}}) {
    auto fit = FitGlobalSequence(train, 0, 1, options);
    if (!fit.ok()) {
      std::fprintf(stderr, "fit failed: %s\n",
                   fit.status().ToString().c_str());
      continue;
    }
    ModelParamSet params;
    params.num_keywords = 1;
    params.num_locations = 1;
    params.num_ticks = train.size();
    params.global = {fit->params};
    params.shocks = fit->shocks;
    auto fc = ForecastGlobal(params, 0, test.size());
    std::printf("%-24s %8zu %12.3f %14.3f\n", label, fit->shocks.size(),
                fit->rmse, fc.ok() ? Rmse(test, *fc) : -1.0);
  }
  std::printf("\nExpected shape: the one-shot variant needs ~1 shock per "
              "spike on the training range and misses every future event, "
              "so its forecast RMSE is much worse.\n");
  return 0;
}

}  // namespace
}  // namespace dspot

int main() { return dspot::Run(); }
