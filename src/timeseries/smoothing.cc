#include "timeseries/smoothing.h"

#include <algorithm>

namespace dspot {

Series MovingAverage(const Series& s, size_t radius) {
  const size_t n = s.size();
  Series out(n);
  for (size_t t = 0; t < n; ++t) {
    const size_t lo = t >= radius ? t - radius : 0;
    const size_t hi = std::min(n - 1, t + radius);
    double sum = 0.0;
    size_t count = 0;
    for (size_t k = lo; k <= hi; ++k) {
      if (s.IsObserved(k)) {
        sum += s[k];
        ++count;
      }
    }
    out[t] = count == 0 ? kMissingValue : sum / static_cast<double>(count);
  }
  return out;
}

Series Ewma(const Series& s, double alpha) {
  const size_t n = s.size();
  Series out(n);
  double level = 0.0;
  bool initialized = false;
  for (size_t t = 0; t < n; ++t) {
    if (s.IsObserved(t)) {
      if (!initialized) {
        level = s[t];
        initialized = true;
      } else {
        level = alpha * s[t] + (1.0 - alpha) * level;
      }
    }
    out[t] = initialized ? level : kMissingValue;
  }
  return out;
}

Series Difference(const Series& s) {
  const size_t n = s.size();
  Series out(n);
  if (n == 0) {
    return out;
  }
  out[0] = 0.0;
  for (size_t t = 1; t < n; ++t) {
    if (s.IsObserved(t) && s.IsObserved(t - 1)) {
      out[t] = s[t] - s[t - 1];
    } else {
      out[t] = kMissingValue;
    }
  }
  return out;
}

}  // namespace dspot
