#ifndef DSPOT_GUARD_FAULT_INJECTOR_H_
#define DSPOT_GUARD_FAULT_INJECTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace dspot {

/// Places in the fit pipeline where the FaultInjector can force a failure.
/// Each site is a single, named call point (or small family of call points)
/// whose error-handling path would otherwise only be reachable with a
/// genuinely hostile input.
enum class FaultSite {
  /// The Levenberg-Marquardt cost evaluation: the computed cost is replaced
  /// with a quiet NaN, exercising the divergence-recovery path.
  kNanAtResidual = 0,
  /// The damped normal-equation solve inside LM: the LDLT solve is treated
  /// as failed, exercising the lambda-escalation and give-up paths.
  kSolverFailure,
  /// Workspace/slot acquisition at solver and pipeline entry points: the
  /// call fails with an Internal status, exercising per-keyword error
  /// reporting and the kSkipAndReport batch policy.
  kAllocation,
  /// GuardContext::Check: the deadline is reported as expired even though
  /// wall time remains, exercising every deadline unwind path without
  /// depending on timing.
  kDeadlineExpiry,
  /// DurableFile::WriteAll: one write() call transfers only half of the
  /// requested bytes, exercising the partial-write continuation loop (and,
  /// combined with the crash hook, torn-record recovery).
  kIoShortWrite,
  /// DurableFile::WriteAll: a write() call fails outright as if the disk
  /// were full (ENOSPC), exercising the bounded retry-with-backoff and the
  /// atomic-write guarantee that a failed save never corrupts the
  /// destination path.
  kIoNoSpace,
  /// DurableFile::Sync: fsync reports failure. Not retried — after a
  /// failed fsync the kernel may have dropped the dirty pages, so the only
  /// honest response is to fail the operation (fsyncgate semantics).
  kIoFsyncFailure,
  /// AtomicWriteFile: the final rename(temp -> destination) fails; the
  /// destination must be left untouched and the temp file cleaned up.
  kIoRenameFailure,
  kNumSites,
};

/// Canonical name of a fault site (e.g. "NanAtResidual").
const char* FaultSiteName(FaultSite site);

/// Deterministic, seed-driven fault injection.
///
/// A process-wide singleton consulted at a handful of fixed sites in the
/// fit pipeline. Disarmed (the default) it costs one relaxed atomic load
/// per probe. Armed, each probe of a site increments that site's draw
/// counter n and fires iff
///
///   SplitMix64(seed ^ (site_salt + n)) < rate * 2^64
///
/// so the sequence of fired draws is a pure function of (seed, rate, site,
/// n) — rerunning a serial fit with the same seed injects the same faults
/// at the same points. Under multi-threaded fits, which *call* observes a
/// given draw index depends on scheduling, but the set of firing indices
/// does not; tests therefore assert clean-failure invariants (no crash,
/// no hang, no non-finite output) rather than specific fault placements
/// when threads > 1.
///
/// ArmExact() instead fires exactly one specific upcoming draw of a site,
/// which is what the targeted unit tests use.
///
/// THREAD SAFETY: ShouldFire is safe to call concurrently. Arm/Disarm must
/// not race with in-flight fits — arm, run, disarm (tests do exactly this).
class FaultInjector {
 public:
  /// The process-wide injector.
  static FaultInjector& Instance();

  /// Arms every site with the given seed and per-draw firing rate in
  /// [0, 1]. Resets all counters.
  void Arm(uint64_t seed, double rate);

  /// Arms a single site (others keep their state). Resets its counters.
  void ArmSite(FaultSite site, uint64_t seed, double rate);

  /// One-shot: the `nth` upcoming draw (0-based, counted from this call)
  /// of `site` fires; all other draws of the site do not. Resets the
  /// site's counters.
  void ArmExact(FaultSite site, uint64_t nth);

  /// Disarms every site and resets all counters. Probes return to the
  /// single-atomic-load fast path.
  void Disarm();

  /// True iff any site is armed (the fast-path gate).
  bool armed() const { return any_armed_.load(std::memory_order_relaxed); }

  /// Draws one injection decision for `site`. Always false when disarmed.
  bool ShouldFire(FaultSite site);

  /// Number of decisions drawn / faults fired at `site` since it was last
  /// (re-)armed. Test observability.
  uint64_t draws(FaultSite site) const;
  uint64_t fired(FaultSite site) const;

  /// Reads the DSPOT_FAULT_SEED environment variable (decimal), returning
  /// `fallback` when unset or unparseable. CI sweeps set this to vary
  /// which draws fire across runs; the injector itself is only ever armed
  /// explicitly, so binaries that never call Arm are unaffected.
  static uint64_t SeedFromEnv(uint64_t fallback = 0);

 private:
  FaultInjector() = default;

  static constexpr uint64_t kNoExact = ~uint64_t{0};
  static constexpr size_t kNumSites = static_cast<size_t>(FaultSite::kNumSites);

  struct SiteState {
    std::atomic<bool> armed{false};
    std::atomic<uint64_t> draws{0};
    std::atomic<uint64_t> fired{0};
    /// kNoExact = probabilistic mode; otherwise the single firing draw.
    std::atomic<uint64_t> exact{kNoExact};
    /// Firing threshold in 64-bit fixed point (probabilistic mode).
    std::atomic<uint64_t> threshold{0};
    std::atomic<uint64_t> seed{0};
  };

  void RefreshAnyArmed();

  SiteState sites_[kNumSites];
  std::atomic<bool> any_armed_{false};
};

/// Hot-path probe: one relaxed atomic load when the injector is disarmed.
inline bool MaybeInjectFault(FaultSite site) {
  FaultInjector& injector = FaultInjector::Instance();
  if (!injector.armed()) {
    return false;
  }
  return injector.ShouldFire(site);
}

}  // namespace dspot

#endif  // DSPOT_GUARD_FAULT_INJECTOR_H_
