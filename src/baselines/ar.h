#ifndef DSPOT_BASELINES_AR_H_
#define DSPOT_BASELINES_AR_H_

#include <cstddef>
#include <vector>

#include "common/statusor.h"
#include "timeseries/series.h"

namespace dspot {

/// Autoregressive model of order r with intercept:
///
///   y(t) = c + a_1 y(t-1) + ... + a_r y(t-r) + e(t)
///
/// Fit by linear least squares (QR). This is the linear baseline the paper
/// compares against in the forecasting experiment (Fig. 11, with
/// r = 8, 26, 50).
class ArModel {
 public:
  /// Fits an AR(`order`) model to `data`. Missing entries are linearly
  /// interpolated before fitting. Requires data.size() >= 2 * order + 2.
  static StatusOr<ArModel> Fit(const Series& data, size_t order);

  size_t order() const { return coefficients_.size(); }
  double intercept() const { return intercept_; }
  const std::vector<double>& coefficients() const { return coefficients_; }

  /// One-step-ahead in-sample predictions; the first `order` ticks repeat
  /// the observations (no history to predict from).
  Series PredictInSample(const Series& data) const;

  /// Iterated multi-step forecast: seeds the recursion with the last
  /// `order` values of `history` and rolls forward `horizon` ticks, feeding
  /// predictions back in.
  Series Forecast(const Series& history, size_t horizon) const;

 private:
  ArModel(double intercept, std::vector<double> coefficients)
      : intercept_(intercept), coefficients_(std::move(coefficients)) {}

  double intercept_;
  std::vector<double> coefficients_;  ///< a_1 .. a_r (lag 1 first)
};

}  // namespace dspot

#endif  // DSPOT_BASELINES_AR_H_
