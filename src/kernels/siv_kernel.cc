#include "kernels/siv_kernel.h"

#include "kernels/dspot_simd.h"

namespace dspot {
namespace kernels {

void SimulateSivScalarInto(const SivParams& params,
                           std::span<const double> epsilon,
                           std::span<const double> eta,
                           std::span<double> out) {
  SimulateSivT<double>(params.population, params.beta, params.delta,
                       params.gamma, params.i0, epsilon, eta, out);
}

void SivJacobianInto(const SivParams& params, std::span<const double> epsilon,
                     std::span<const double> eta,
                     std::span<const size_t> observed, size_t n_ticks,
                     double* jac, size_t row_stride) {
  using D = Dual<kSivNumParams>;
  const D population = D::Var(params.population, 0);
  const D beta = D::Var(params.beta, 1);
  const D delta = D::Var(params.delta, 2);
  const D gamma = D::Var(params.gamma, 3);
  const D i0 = D::Var(params.i0, 4);

  // Same recurrence as SimulateSivT, but without materializing a Dual
  // trajectory buffer: observed indices are sorted ascending in every
  // caller (they are built by a forward scan over the data), so gradient
  // rows are emitted in-stride as the simulation passes each index.
  const D n = TMax(population, D(1e-9));
  D i = TClamp(i0, D(0.0), n);
  D s = n - i;
  D v = D(0.0);
  const D delta_c = TClamp(delta, D(0.0), D(1.0));
  const D gamma_c = TClamp(gamma, D(0.0), D(1.0));

  size_t next = 0;
  for (size_t t = 0; t < n_ticks && next < observed.size(); ++t) {
    while (next < observed.size() && observed[next] == t) {
      double* row = jac + next * row_stride;
      for (size_t p = 0; p < kSivNumParams; ++p) row[p] = i.d[p];
      ++next;
    }

    const double eps = t < epsilon.size() ? epsilon[t] : 1.0;
    const double eta_t = t < eta.size() ? eta[t] : 0.0;
    const D raw_infect = beta * (s / n) * D(eps) * i * D(1.0 + eta_t);
    const D infect = TClamp(raw_infect, D(0.0), s);
    const D recover = delta_c * i;
    const D wane = gamma_c * v;

    s += wane - infect;
    i += infect - recover;
    v += recover - wane;
  }
}

namespace {

/// Scalar remainder path of the batch kernel: runs lanes [lane_begin,
/// count) of the SoA batch one at a time with the exact SimulateSivT
/// operation sequence, reading/writing the strided SoA slots.
void SimulateSivBatchScalarTail(const SivBatchSoA& batch, size_t count,
                                size_t n_ticks, size_t lane_begin,
                                double* out) {
  for (size_t l = lane_begin; l < count; ++l) {
    const double n = TMax(batch.population[l], 1e-9);
    double i = TClamp(batch.i0[l], 0.0, n);
    double s = n - i;
    double v = 0.0;
    const double delta = TClamp(batch.delta[l], 0.0, 1.0);
    const double gamma = TClamp(batch.gamma[l], 0.0, 1.0);
    const double beta = batch.beta[l];

    for (size_t t = 0; t < n_ticks; ++t) {
      out[t * count + l] = i;

      const double eps = batch.epsilon ? batch.epsilon[t * count + l] : 1.0;
      const double eta_t = batch.eta ? batch.eta[t * count + l] : 0.0;
      const double raw_infect = beta * (s / n) * eps * i * (1.0 + eta_t);
      const double infect = TClamp(raw_infect, 0.0, s);
      const double recover = delta * i;
      const double wane = gamma * v;

      s += wane - infect;
      i += infect - recover;
      v += recover - wane;
    }
  }
}

}  // namespace

void SimulateSivBatchInto(const SivBatchSoA& batch, size_t count,
                          size_t n_ticks, double* out) {
  using simd::VecD;
  const size_t vec_end = count - (count % simd::kNumLanes);

  const VecD zero = VecD::Zero();
  const VecD one = VecD::Splat(1.0);
  const VecD n_floor = VecD::Splat(1e-9);

  for (size_t l = 0; l < vec_end; l += simd::kNumLanes) {
    // Per-lane setup mirrors the scalar kernel: n = max(pop, 1e-9),
    // i = clamp(i0, 0, n), rate clamps to [0, 1]. Min/Max pick the same
    // operand std::max/std::clamp pick for finite inputs, so each lane
    // stays bit-identical to SimulateSivScalarInto.
    const VecD n = simd::Max(VecD::Load(batch.population + l), n_floor);
    VecD i = simd::Min(simd::Max(VecD::Load(batch.i0 + l), zero), n);
    VecD s = n - i;
    VecD v = zero;
    const VecD delta = simd::Min(simd::Max(VecD::Load(batch.delta + l), zero), one);
    const VecD gamma = simd::Min(simd::Max(VecD::Load(batch.gamma + l), zero), one);
    const VecD beta = VecD::Load(batch.beta + l);

    for (size_t t = 0; t < n_ticks; ++t) {
      i.Store(out + t * count + l);

      const VecD eps =
          batch.epsilon ? VecD::Load(batch.epsilon + t * count + l) : one;
      const VecD eta_t =
          batch.eta ? VecD::Load(batch.eta + t * count + l) : zero;
      const VecD raw_infect = beta * (s / n) * eps * i * (one + eta_t);
      const VecD infect = simd::Min(simd::Max(raw_infect, zero), s);
      const VecD recover = delta * i;
      const VecD wane = gamma * v;

      s = s + (wane - infect);
      i = i + (infect - recover);
      v = v + (recover - wane);
    }
  }

  SimulateSivBatchScalarTail(batch, count, n_ticks, vec_end, out);
}

}  // namespace kernels
}  // namespace dspot
