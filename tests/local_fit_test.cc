// Tests for LOCALFIT (Algorithm 3): per-location populations, growth
// rates and sparse local shock strengths.

#include <gtest/gtest.h>

#include "core/dspot.h"
#include "core/global_fit.h"
#include "core/local_fit.h"
#include "core/simulate.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

/// Fixture: one generated tensor + global fit, shared across the tests in
/// this file (LocalFit inputs are deterministic given the seed).
class LocalFitTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig config = GoogleTrendsConfig(7);
    config.n_ticks = 312;
    config.num_locations = 8;
    config.num_outlier_locations = 2;
    auto generated = GenerateTensor({EbolaOn200()}, config);
    ASSERT_TRUE(generated.ok());
    generated_ = new GeneratedTensor(std::move(generated).value());
    auto params = GlobalFit(generated_->tensor);
    ASSERT_TRUE(params.ok());
    params_ = new ModelParamSet(std::move(params).value());
    ASSERT_TRUE(LocalFit(generated_->tensor, params_).ok());
  }

  static void TearDownTestSuite() {
    delete generated_;
    delete params_;
    generated_ = nullptr;
    params_ = nullptr;
  }

  static KeywordScenario EbolaOn200() {
    KeywordScenario sc = EbolaScenario();
    sc.shocks[0].start = 200;
    return sc;
  }

  static GeneratedTensor* generated_;
  static ModelParamSet* params_;
};

GeneratedTensor* LocalFitTest::generated_ = nullptr;
ModelParamSet* LocalFitTest::params_ = nullptr;

TEST_F(LocalFitTest, PopulatesLocalMatrices) {
  EXPECT_TRUE(params_->has_local());
  EXPECT_EQ(params_->base_local.rows(), 1u);
  EXPECT_EQ(params_->base_local.cols(), 8u);
  EXPECT_EQ(params_->growth_local.rows(), 1u);
}

TEST_F(LocalFitTest, ShockLocalStrengthsSized) {
  for (const Shock& s : params_->shocks) {
    EXPECT_EQ(s.local_strengths.rows(), s.global_strengths.size());
    EXPECT_EQ(s.local_strengths.cols(), 8u);
  }
}

TEST_F(LocalFitTest, LocalPopulationsTrackTruthOrdering) {
  // Zipf shares: location 0 largest. Fitted local populations should
  // preserve the ordering of the true ones for the big locations.
  EXPECT_GT(params_->base_local(0, 0), params_->base_local(0, 1));
  EXPECT_GT(params_->base_local(0, 1), params_->base_local(0, 3));
}

TEST_F(LocalFitTest, OutliersGetSparseStrengths) {
  // The two trailing locations are low-connectivity outliers that mostly
  // do not participate in the burst: their fitted strengths are zero (or
  // near) while the biggest location participates strongly.
  double outlier_strength = 0.0;
  double main_strength = 0.0;
  for (const Shock& s : params_->shocks) {
    for (size_t m = 0; m < s.local_strengths.rows(); ++m) {
      outlier_strength += s.local_strengths(m, 7);
      main_strength += s.local_strengths(m, 0);
    }
  }
  EXPECT_GT(main_strength, 0.5);
  EXPECT_LT(outlier_strength, 0.1);
}

TEST_F(LocalFitTest, LocalEstimatesFitLocalSequences) {
  for (size_t j = 0; j < 8; ++j) {
    const Series data = generated_->tensor.LocalSequence(0, j);
    const Series est = SimulateLocal(*params_, 0, j, 312);
    const double range = data.MaxValue() - data.MinValue();
    if (range < 1.0) continue;  // outlier locations are nearly flat
    EXPECT_LT(Rmse(data, est), 0.25 * range) << "location " << j;
  }
}

TEST_F(LocalFitTest, LocalEstimatesSumNearGlobal) {
  Series sum(312);
  for (size_t j = 0; j < 8; ++j) {
    const Series est = SimulateLocal(*params_, 0, j, 312);
    for (size_t t = 0; t < 312; ++t) sum[t] += est[t];
  }
  const Series global = generated_->tensor.GlobalSequence(0);
  const double range = global.MaxValue() - global.MinValue();
  EXPECT_LT(Rmse(global, sum), 0.25 * range);
}

TEST(LocalFitErrors, NullParams) {
  ActivityTensor tensor(1, 1, 32);
  EXPECT_EQ(LocalFit(tensor, nullptr).code(), StatusCode::kInvalidArgument);
}

TEST(LocalFitErrors, DimensionMismatch) {
  ActivityTensor tensor(2, 2, 32);
  ModelParamSet params;
  params.global.resize(1);
  params.num_ticks = 32;
  EXPECT_EQ(LocalFit(tensor, &params).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dspot
