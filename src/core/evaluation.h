#ifndef DSPOT_CORE_EVALUATION_H_
#define DSPOT_CORE_EVALUATION_H_

#include <cstddef>
#include <vector>

#include "common/statusor.h"
#include "core/global_fit.h"
#include "timeseries/series.h"

namespace dspot {

/// Train/test evaluation harness for fitting and forecasting quality —
/// the machinery behind the accuracy (Fig. 9) and forecasting (Fig. 11)
/// experiments, reusable for new models and datasets.

/// In-sample fit quality of an estimate against data.
struct FitQuality {
  double rmse = 0.0;
  double mae = 0.0;
  double normalized_rmse = 0.0;  ///< RMSE / observed range
  double r_squared = 0.0;
};

/// Computes all fit-quality metrics at once.
FitQuality EvaluateFit(const Series& actual, const Series& estimate);

/// Forecast quality over a horizon.
struct ForecastQuality {
  double rmse = 0.0;
  double mae = 0.0;
  /// |error| averaged within consecutive horizon buckets of
  /// `horizon_bucket` ticks each — shows how accuracy degrades with
  /// distance from the training range. A bucket in which no tick pair was
  /// scored (every tick missing in `actual` or `forecast`) holds
  /// kMissingValue, not 0.0. The last bucket may cover fewer than
  /// `horizon_bucket` ticks; it averages over only the ticks it contains.
  std::vector<double> error_by_horizon;
  size_t horizon_bucket = 0;
};

/// Scores `forecast` against the held-out `actual`. Only the overlapping
/// prefix min(actual.size(), forecast.size()) is scored: a forecast longer
/// than the held-out data is truncated, never extrapolated against.
/// `horizon_bucket` sets the bucket width for the degradation curve; 0 is
/// clamped to 1 (the stored `q.horizon_bucket` reflects the clamp).
ForecastQuality EvaluateForecast(const Series& actual, const Series& forecast,
                                 size_t horizon_bucket = 26);

/// End-to-end: fit Δ-SPOT (single sequence) on the first `train_ticks` of
/// `full`, forecast the rest, and score both halves. The fitted model's
/// event inventory is returned too, so callers can check which events the
/// forecast carries forward.
struct TrainTestResult {
  GlobalSequenceFit fit;
  FitQuality train_quality;
  ForecastQuality test_quality;
  Series forecast;
};

StatusOr<TrainTestResult> TrainAndForecast(
    const Series& full, size_t train_ticks,
    const GlobalFitOptions& options = GlobalFitOptions());

}  // namespace dspot

#endif  // DSPOT_CORE_EVALUATION_H_
