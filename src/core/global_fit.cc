#include "core/global_fit.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <span>

#include "core/cost.h"
#include "core/simulate.h"
#include "guard/fault_injector.h"
#include "kernels/siv_kernel.h"
#include "obs/metrics.h"
#include "optimize/levenberg_marquardt.h"
#include "optimize/line_search.h"
#include "parallel/parallel_for.h"
#include "timeseries/metrics.h"

namespace dspot {

namespace {

/// Bundles the state GLOBALFIT iterates on for one keyword.
struct FitState {
  Series data;
  size_t keyword = 0;
  size_t num_keywords = 1;
  size_t n = 0;
  double peak = 1.0;
  KeywordGlobalParams params;
  std::vector<Shock> shocks;
  CodingModel coding = CodingModel::kGaussian;
  /// Mirrors GlobalFitOptions::use_numeric_jacobian into every
  /// FitBaseParams solve (probe copies inherit it).
  bool use_numeric_jacobian = false;
  /// Guard threaded into every LM solve below; inactive by default.
  GuardContext guard;
  /// Aggregated health for the whole alternation. Probe copies share the
  /// pointer on purpose: restarts spent on rejected candidates are still
  /// work the fit performed.
  FitHealth* health = nullptr;
};

/// Per-keyword scratch threaded through every helper below: the schedule
/// cache, the LM workspace, and the simulation / residual-index buffers.
/// One instance per FitGlobalSequence call (and hence per ParallelMap task
/// in GlobalFit), so the alternation loop stays allocation-free once warm
/// without sharing mutable state across threads.
struct FitScratch {
  ScheduleCache schedules;
  LmWorkspace lm;
  std::vector<double> estimate;
  std::vector<size_t> observed;
};

/// Simulates the state into scratch->estimate and returns a view of it.
/// The view is valid until the next simulation through the same scratch.
std::span<const double> SimulateStateInto(const FitState& state,
                                          FitScratch* scratch) {
  scratch->estimate.resize(state.n);
  const std::span<const double> epsilon =
      scratch->schedules.GlobalEpsilon(state.shocks, state.keyword, state.n);
  const std::span<const double> eta =
      state.params.has_growth()
          ? scratch->schedules.Eta(state.params.growth_rate,
                                   state.params.growth_start, state.n)
          : std::span<const double>();
  const SivDynamics dynamics{state.params.population, state.params.beta,
                             state.params.delta, state.params.gamma,
                             state.params.i0};
  SimulateSivInto(dynamics, epsilon, eta, scratch->estimate);
  return scratch->estimate;
}

/// Owning-Series variant for results that outlive the scratch.
Series SimulateStateSeries(const FitState& state, FitScratch* scratch) {
  const std::span<const double> estimate = SimulateStateInto(state, scratch);
  Series out(state.n);
  std::copy(estimate.begin(), estimate.end(), out.mutable_values().begin());
  return out;
}

double StateCostBits(const FitState& state, FitScratch* scratch) {
  return GlobalKeywordCostBits(std::span<const double>(state.data.values()),
                               SimulateStateInto(state, scratch), state.params,
                               state.shocks, state.keyword,
                               state.num_keywords, state.n, state.coding);
}

double StateRmse(const FitState& state, FitScratch* scratch) {
  return Rmse(std::span<const double>(state.data.values()),
              SimulateStateInto(state, scratch));
}

/// LM fit of the continuous base parameters {N, beta, delta, gamma, i0}
/// with shocks and growth held fixed. Multi-start on the first round.
/// Numerical failures of individual starts are recoverable (the next
/// start may succeed) and are skipped; anything else — cancellation,
/// injected internal faults — aborts the fit and propagates.
Status FitBaseParams(FitState* state, bool multi_start, FitScratch* scratch) {
  DSPOT_SPAN("global_fit.base_lm");
  const double peak = state->peak;
  // Shocks and growth are held fixed here, so both schedules can be
  // materialized once for the whole solve instead of per residual call;
  // nothing below touches the cache, so the views stay valid. Only the
  // five scalar dynamics vary between evaluations.
  const std::span<const double> epsilon =
      scratch->schedules.GlobalEpsilon(state->shocks, state->keyword,
                                       state->n);
  const std::span<const double> eta =
      state->params.has_growth()
          ? scratch->schedules.Eta(state->params.growth_rate,
                                   state->params.growth_start, state->n)
          : std::span<const double>();
  std::vector<size_t>& observed = scratch->observed;
  observed.clear();
  for (size_t t = 0; t < state->n; ++t) {
    if (state->data.IsObserved(t)) observed.push_back(t);
  }
  std::vector<double>& estimate = scratch->estimate;
  estimate.resize(state->n);
  const Series& data = state->data;
  auto residual_fn = [&](std::span<const double> p,
                         std::span<double> r) -> Status {
    const SivDynamics dynamics{p[0], p[1], p[2], p[3], p[4]};
    SimulateSivInto(dynamics, epsilon, eta, estimate);
    for (size_t k = 0; k < observed.size(); ++k) {
      const size_t t = observed[k];
      r[k] = estimate[t] - data[t];
    }
    return Status::Ok();
  };
  // N must exceed the observed peak: I(t) <= N always, so a smaller N
  // would make the spikes unreachable for any shock strength.
  Bounds bounds;
  bounds.lower = {peak * 1.05, 1e-4, 1e-4, 1e-4, 1e-6};
  bounds.upper = {peak * 300.0, 5.0, 1.0, 1.0, peak};

  // Analytic Jacobian: dr_k/dp = dI(observed[k])/d{N,beta,delta,gamma,i0},
  // from one forward-mode dual pass over the recurrence — replacing the
  // five re-simulations per LM iteration of the numeric path (kept above
  // as a cross-check behind use_numeric_jacobian).
  JacobianIntoFn analytic_jacobian;
  if (!state->use_numeric_jacobian) {
    analytic_jacobian = [&, n = state->n](std::span<const double> p,
                                          Matrix* jac) -> Status {
      const kernels::SivParams sp{p[0], p[1], p[2], p[3], p[4]};
      kernels::SivJacobianInto(sp, epsilon, eta, observed, n,
                               jac->MutableData(), jac->cols());
      return Status::Ok();
    };
  }

  std::vector<std::vector<double>> starts;
  if (multi_start) {
    starts = {
        {peak * 2.0, 0.3, 0.1, 0.05, 1.0},
        {peak * 2.0, 0.6, 0.4, 0.2, 1.0},
        {peak * 5.0, 0.9, 0.7, 0.5, peak * 0.01},
        {peak * 1.5, 0.2, 0.5, 0.1, peak * 0.05},
    };
  } else {
    starts = {{state->params.population, state->params.beta,
               state->params.delta, state->params.gamma, state->params.i0}};
  }
  LmOptions lm_options;
  lm_options.guard = state->guard;
  lm_options.analytic_jacobian = analytic_jacobian;
  double best_cost = std::numeric_limits<double>::infinity();
  KeywordGlobalParams best = state->params;
  for (const auto& init : starts) {
    auto fit_or = LevenbergMarquardt(residual_fn, observed.size(), init,
                                     bounds, lm_options, &scratch->lm);
    if (!fit_or.ok()) {
      const StatusCode code = fit_or.status().code();
      if (code == StatusCode::kNumericalError ||
          code == StatusCode::kInvalidArgument) {
        continue;  // recoverable per-start failure; try the next start
      }
      return fit_or.status();
    }
    if (state->health) {
      state->health->restarts += fit_or->health.restarts;
    }
    if (fit_or->final_cost < best_cost) {
      best_cost = fit_or->final_cost;
      best.population = fit_or->params[0];
      best.beta = fit_or->params[1];
      best.delta = fit_or->params[2];
      best.gamma = fit_or->params[3];
      best.i0 = fit_or->params[4];
      best.growth_rate = state->params.growth_rate;
      best.growth_start = state->params.growth_start;
    }
  }
  if (std::isfinite(best_cost)) {
    state->params = best;
  }
  return Status::Ok();
}

/// Growth-effect search: grid over the onset t_eta, 1-d search over eta_0.
/// A growth term is adopted when it lowers the MDL cost or buys a
/// meaningful RMSE improvement (same optimistic-forward rationale as shock
/// addition; the term only costs ~40 bits, so any real improvement also
/// wins on cost at the next evaluation). An existing term is dropped when
/// the model without it codes cheaper.
void FitGrowth(FitState* state, const GlobalFitOptions& options,
               FitScratch* scratch) {
  DSPOT_SPAN("global_fit.growth_search");
  const double base_cost = StateCostBits(*state, scratch);

  FitState probe = *state;
  // Consider removing an existing growth term (strict MDL).
  if (state->params.has_growth()) {
    probe.params.growth_start = kNpos;
    probe.params.growth_rate = 0.0;
    if (StateCostBits(probe, scratch) < base_cost) {
      state->params = probe.params;
      return;
    }
    probe.params = state->params;
  }
  double best_rmse = std::numeric_limits<double>::infinity();
  double best_cost = base_cost;
  KeywordGlobalParams best = state->params;
  const size_t grid = std::max<size_t>(options.growth_grid, 2);
  for (size_t g = 1; g < grid; ++g) {
    const size_t t_eta = state->n * g / grid;
    if (t_eta < 2 || t_eta + 4 >= state->n) continue;
    probe.params.growth_start = t_eta;
    const double rate = GridThenGoldenMinimize(
        [&](double eta0) {
          probe.params.growth_rate = eta0;
          return StateRmse(probe, scratch);
        },
        0.0, options.max_growth_rate, 20, 1e-4);
    probe.params.growth_rate = rate;
    const double rmse = StateRmse(probe, scratch);
    if (rmse < best_rmse) {
      best_rmse = rmse;
      best_cost = StateCostBits(probe, scratch);
      best = probe.params;
    }
  }
  const bool mdl_better = best_cost < base_cost * (1.0 - options.min_cost_decrease) ||
                          best_cost < base_cost - 1.0;
  if (mdl_better) {
    state->params = best;
  }
}

/// Hierarchical fit of one shock's strengths. Stage 1 fits the shared
/// eps_0 (one float under MDL). Stage 2 lets individual occurrences
/// deviate where that helps the fit, then reverts deviations that do not
/// pay their own description cost — keeping most occurrences at the
/// default and the model parsimonious.
void FitShockStrengths(FitState* state, size_t shock_index,
                       double max_strength, FitScratch* scratch) {
  Shock& shock = state->shocks[shock_index];
  // Stage 1: shared strength.
  const double shared = GuardedMinimize(
      [&](double strength) {
        shock.base_strength = strength;
        std::fill(shock.global_strengths.begin(),
                  shock.global_strengths.end(), strength);
        return StateRmse(*state, scratch);
      },
      0.0, max_strength, shock.base_strength);
  shock.base_strength = shared;
  std::fill(shock.global_strengths.begin(), shock.global_strengths.end(),
            shared);
  // Stage 2: per-occurrence deviations (pointless for one occurrence).
  if (shock.global_strengths.size() < 2) {
    return;
  }
  for (size_t m = 0; m < shock.global_strengths.size(); ++m) {
    shock.global_strengths[m] = GuardedMinimize(
        [&](double strength) {
          shock.global_strengths[m] = strength;
          return StateRmse(*state, scratch);
        },
        0.0, max_strength, shock.global_strengths[m]);
  }
  // MDL sweep: a deviation stays only if it codes cheaper than the
  // default.
  double cost = StateCostBits(*state, scratch);
  for (size_t m = 0; m < shock.global_strengths.size(); ++m) {
    if (shock.global_strengths[m] == shock.base_strength) continue;
    const double saved = shock.global_strengths[m];
    shock.global_strengths[m] = shock.base_strength;
    const double cost_reverted = StateCostBits(*state, scratch);
    if (cost_reverted <= cost) {
      cost = cost_reverted;
    } else {
      shock.global_strengths[m] = saved;
    }
  }
}

/// Refines a candidate's (t_s, t_w) against the data. Detected bursts lag
/// the causal shock window — I(t) responds to eps(t) one or two ticks
/// later — so the burst-anchored proposal is scanned over small backward
/// start offsets and narrower widths. Each variant is scored cheaply with
/// a single shared strength; the winner is returned with its occurrence
/// vector resized.
Shock RefineShockPlacement(const FitState& state, const Shock& candidate,
                           double max_strength, FitScratch* scratch) {
  Shock best = candidate;
  double best_rmse = std::numeric_limits<double>::infinity();
  FitState probe = state;
  probe.shocks.push_back(candidate);
  Shock& trial = probe.shocks.back();
  for (size_t offset = 0; offset <= 3; ++offset) {
    if (candidate.start < offset) break;
    for (size_t narrow = 0; narrow < 3 && candidate.width > narrow; ++narrow) {
      trial = candidate;
      trial.start = candidate.start - offset;
      trial.width = candidate.width - narrow;
      trial.global_strengths.assign(trial.NumOccurrences(state.n), 0.0);
      // Shared-strength 1-d fit (cheap placement score).
      const double strength = GridThenGoldenMinimize(
          [&](double v) {
            std::fill(trial.global_strengths.begin(),
                      trial.global_strengths.end(), v);
            return StateRmse(probe, scratch);
          },
          0.0, max_strength, 20, 1e-2);
      trial.base_strength = strength;
      std::fill(trial.global_strengths.begin(), trial.global_strengths.end(),
                strength);
      const double rmse = StateRmse(probe, scratch);
      if (rmse < best_rmse) {
        best_rmse = rmse;
        best = trial;
      }
    }
  }
  return best;
}

/// One pass of greedy shock detection: propose candidates from the current
/// residual, refine their placement, fit their strengths, and keep the
/// best candidate. Acceptance is *optimistic*: a candidate is kept if it
/// lowers the MDL cost OR improves the RMSE by a meaningful margin. With
/// several overlapping spike trains, no single train lowers the Gaussian
/// coding cost on its own (the residual variance stays dominated by the
/// remaining trains), so a strict per-addition MDL gate deadlocks; the
/// strict gate is instead applied by the backward pruning pass after the
/// joint refit. Returns true if a shock was added.
StatusOr<bool> TryAddShock(FitState* state, const GlobalFitOptions& options,
                           double* current_cost, FitScratch* scratch) {
  const std::span<const double> estimate = SimulateStateInto(*state, scratch);
  Series residual(state->n);
  for (size_t t = 0; t < state->n; ++t) {
    residual[t] = state->data.IsObserved(t) ? state->data[t] - estimate[t]
                                            : kMissingValue;
  }
  const std::vector<Shock> candidates =
      ProposeShockCandidates(residual, state->keyword, options.detection);
  DSPOT_COUNT("global_fit.shock_candidates", candidates.size());
  if (candidates.empty()) {
    return false;
  }
  const double base_cost = *current_cost;
  const double base_rmse = StateRmse(*state, scratch);
  // The forward pass optimizes explanatory power optimistically; the
  // backward pass restores parsimony.
  double best_cost = std::numeric_limits<double>::infinity();
  FitState best_state = *state;
  bool improved = false;
  for (const Shock& candidate : candidates) {
    FitState probe = *state;
    probe.shocks.push_back(RefineShockPlacement(
        *state, candidate, options.max_shock_strength, scratch));
    FitShockStrengths(&probe, probe.shocks.size() - 1,
                      options.max_shock_strength, scratch);
    // Joint refinement before the MDL verdict: the incumbent base was fit
    // with this spike mass unexplained, so judge the candidate only after
    // base and strengths are refit *together*. Shock-free optima often sit
    // in degenerate basins (e.g. a slow-ramp fit with tiny beta/delta
    // where no eps(t) can produce a spike), and neither a warm base refit
    // (stays in the basin) nor a plain multi-start (the basin wins as long
    // as the strengths are zero) escapes — so each start gets a mini-EM:
    // base LM, strength fit, base LM again.
    {
      const double peak = probe.peak;
      const std::vector<KeywordGlobalParams> seeds = [&] {
        std::vector<KeywordGlobalParams> out = {probe.params};
        KeywordGlobalParams seed = probe.params;
        seed.population = peak * 2.0;
        seed.beta = 0.5;
        seed.delta = 0.45;
        seed.gamma = 0.5;
        seed.i0 = 1.0;
        out.push_back(seed);
        seed.beta = 0.9;
        seed.delta = 0.7;
        seed.gamma = 0.2;
        out.push_back(seed);
        return out;
      }();
      FitState best_joint = probe;
      double best_joint_rmse = std::numeric_limits<double>::infinity();
      for (const KeywordGlobalParams& seed : seeds) {
        FitState trial = probe;
        trial.params = seed;
        DSPOT_RETURN_IF_ERROR(
            FitBaseParams(&trial, /*multi_start=*/false, scratch));
        FitShockStrengths(&trial, trial.shocks.size() - 1,
                          options.max_shock_strength, scratch);
        DSPOT_RETURN_IF_ERROR(
            FitBaseParams(&trial, /*multi_start=*/false, scratch));
        const double trial_rmse = StateRmse(trial, scratch);
        if (trial_rmse < best_joint_rmse) {
          best_joint_rmse = trial_rmse;
          best_joint = std::move(trial);
        }
      }
      probe = std::move(best_joint);
    }
    const double cost = StateCostBits(probe, scratch);
    const double rmse = StateRmse(probe, scratch);
    if (options.verbose) {
      std::fprintf(stderr, "[dspot]   cand %s -> rmse=%.3f cost=%.1f (vs %.1f)\n",
                   probe.shocks.back().ToString().c_str(), rmse, cost,
                   base_cost);
    }
    const bool mdl_better =
        cost < base_cost * (1.0 - options.min_cost_decrease) ||
        cost < base_cost - 1.0;
    const bool rmse_better = rmse < base_rmse * (1.0 - options.min_rmse_decrease);
    // Among acceptable candidates, prefer the cheaper description: cost
    // comparisons between candidates are meaningful even when the shared
    // residual tail keeps all of them above the incumbent.
    if ((mdl_better || rmse_better) && cost < best_cost) {
      best_cost = cost;
      best_state = probe;
      improved = true;
    }
  }
  if (improved) {
    DSPOT_COUNT("global_fit.shocks_added", 1);
    *state = std::move(best_state);
    *current_cost = best_cost;
  }
  return improved;
}

/// The alternation loop shared by FitGlobalSequence (cold start) and
/// RefitGlobalSequence (warm start from a previous fit). On deadline
/// expiry the strict-MDL best-so-far snapshot is returned with
/// health.termination == kDeadlineExceeded; cancellation propagates as
/// Status::Cancelled.
StatusOr<GlobalSequenceFit> RunAlternation(FitState state,
                                           const GlobalFitOptions& options,
                                           FitScratch* scratch) {
  DSPOT_SPAN("global_fit.sequence");
  const auto start_time = std::chrono::steady_clock::now();
  FitHealth health;
  state.health = &health;
  state.guard = options.guard;

  // Guard checkpoint shared by the loops below: records the first non-OK
  // status and reports interruption, so nested loops can unwind through
  // plain breaks. Disarmed guards cost one relaxed atomic load.
  Status guard_status = Status::Ok();
  auto interrupted = [&]() -> bool {
    if (!guard_status.ok()) return true;
    if (!(options.guard.active() || FaultInjector::Instance().armed())) {
      return false;
    }
    Status check = options.guard.Check("GlobalFit alternation");
    if (check.ok()) return false;
    guard_status = std::move(check);
    return true;
  };

  double cost = StateCostBits(state, scratch);

  // `best_state` tracks the strict-MDL optimum (what we return); the round
  // loop keeps exploring while either the cost or the RMSE is still
  // descending, so optimistic shock additions get the extra joint-refit
  // rounds they need to pay for themselves.
  FitState best_state = state;
  double best_cost = cost;
  double prev_rmse = StateRmse(state, scratch);
  bool converged = false;

  for (int round = 0; round < options.max_outer_rounds; ++round) {
    if (interrupted()) break;
    DSPOT_SPAN("global_fit.round");
    DSPOT_COUNT("global_fit.rounds", 1);
    const double round_start_cost = cost;
    // Base refit against the current shock set. Multi-start once shocks
    // exist: the no-shock optimum (which absorbs spikes into the base
    // dynamics) is a poor basin for the shocked model.
    DSPOT_RETURN_IF_ERROR(
        FitBaseParams(&state, /*multi_start=*/!state.shocks.empty(), scratch));
    if (options.verbose) {
      std::fprintf(stderr, "[dspot] round %d after base: cost=%.1f rmse=%.3f\n",
                   round, StateCostBits(state, scratch),
                   StateRmse(state, scratch));
    }
    if (options.allow_shocks) {
      // Refit the strengths of already-accepted shocks against the
      // refreshed base, then greedily extend the shock set.
      for (size_t k = 0; k < state.shocks.size(); ++k) {
        FitShockStrengths(&state, k, options.max_shock_strength, scratch);
      }
      cost = StateCostBits(state, scratch);
      while (state.shocks.size() < options.max_shocks_per_keyword &&
             !interrupted()) {
        DSPOT_ASSIGN_OR_RETURN(
            bool added, TryAddShock(&state, options, &cost, scratch));
        if (!added) break;
      }
    }
    if (interrupted()) break;
    if (options.allow_shocks) {
      // Backward pass: drop shocks whose description cost is no longer
      // justified (mirrors the paper's re-initialization of s_i without
      // discarding still-useful events).
      cost = StateCostBits(state, scratch);
      for (size_t k = 0; k < state.shocks.size();) {
        FitState without = state;
        without.shocks.erase(without.shocks.begin() + k);
        const double cost_without = StateCostBits(without, scratch);
        if (cost_without <= cost + options.prune_slack_bits) {
          DSPOT_COUNT("global_fit.shocks_pruned", 1);
          state = std::move(without);
          cost = cost_without;
        } else {
          ++k;
        }
      }
      // Simplification pass: a cyclic shock whose energy sits in a single
      // occurrence is really a one-shot — re-encode it as such when the
      // code length does not object (prevents "period 9, one strong
      // occurrence" artifacts in the event inventory).
      for (size_t k = 0; k < state.shocks.size(); ++k) {
        const Shock& shock = state.shocks[k];
        if (!shock.IsCyclic() || shock.global_strengths.empty()) continue;
        const size_t m_best = ArgMax(shock.global_strengths);
        if (m_best == kNpos) continue;
        FitState probe = state;
        Shock& alt = probe.shocks[k];
        alt.period = Shock::kNonCyclic;
        alt.start = shock.start + m_best * shock.period;
        alt.base_strength = shock.global_strengths[m_best];
        alt.global_strengths = {alt.base_strength};
        FitShockStrengths(&probe, k, options.max_shock_strength, scratch);
        const double cost_alt = StateCostBits(probe, scratch);
        if (cost_alt <= cost + options.prune_slack_bits) {
          state = std::move(probe);
          cost = cost_alt;
        }
      }
    }
    // Growth is searched after the shock set has stabilized: evaluated
    // earlier, optimistically added shocks absorb the level-shift mass and
    // the strict MDL gate rejects the (real) growth term; evaluated here,
    // the spikes are explained, the junk is pruned, and a level shift
    // shows up cleanly in the coding-cost balance.
    if (options.allow_growth && !interrupted()) {
      FitGrowth(&state, options, scratch);
      if (options.verbose) {
        std::fprintf(stderr,
                     "[dspot] round %d after growth: cost=%.1f rmse=%.3f\n",
                     round, StateCostBits(state, scratch),
                     StateRmse(state, scratch));
      }
    }
    cost = StateCostBits(state, scratch);
    const double rmse = StateRmse(state, scratch);
    if (options.verbose) {
      std::fprintf(stderr,
                   "[dspot] round %d end: cost=%.1f best=%.1f rmse=%.3f "
                   "shocks=%zu\n",
                   round, cost, best_cost, rmse, state.shocks.size());
    }
    ++health.iterations;
    DSPOT_OBSERVE("global_fit.round.cost_bits_delta", cost - round_start_cost);
    bool progressed = false;
    if (cost < best_cost * (1.0 - options.min_cost_decrease) ||
        cost < best_cost - 1.0) {
      best_cost = cost;
      best_state = state;
      progressed = true;
    }
    if (rmse < prev_rmse * (1.0 - options.min_rmse_decrease)) {
      progressed = true;
    }
    prev_rmse = rmse;
    if (!progressed) {
      converged = true;
      break;
    }
  }

  if (!guard_status.ok() &&
      guard_status.code() == StatusCode::kCancelled) {
    return guard_status;
  }

  if (options.return_final_state) {
    best_state = state;
    best_cost = StateCostBits(state, scratch);
  }
  GlobalSequenceFit fit;
  fit.params = best_state.params;
  fit.shocks = best_state.shocks;
  fit.estimate = SimulateStateSeries(best_state, scratch);
  fit.cost_bits = best_cost;
  fit.rmse = Rmse(best_state.data, fit.estimate);
  health.wall_time_ms = ElapsedMs(start_time);
  health.termination = !guard_status.ok()
                           ? FitTermination::kDeadlineExceeded
                           : (converged ? FitTermination::kConverged
                                        : FitTermination::kMaxIterations);
  fit.health = health;
  return fit;
}

}  // namespace

StatusOr<GlobalSequenceFit> FitGlobalSequence(const Series& data,
                                              size_t keyword,
                                              size_t num_keywords,
                                              const GlobalFitOptions& options) {
  if (data.observed_count() < 16) {
    return Status::InvalidArgument(
        "FitGlobalSequence: need at least 16 observations");
  }
  FitState state;
  state.data = data;
  state.keyword = keyword;
  state.num_keywords = std::max<size_t>(num_keywords, 1);
  state.n = data.size();
  state.peak = std::max(data.MaxValue(), 1.0);
  state.coding = options.coding_model;
  state.params.population = state.peak * 2.0;
  state.params.i0 = 1.0;
  state.use_numeric_jacobian = options.use_numeric_jacobian;
  state.guard = options.guard;

  FitScratch scratch;
  DSPOT_RETURN_IF_ERROR(FitBaseParams(&state, /*multi_start=*/true, &scratch));
  return RunAlternation(std::move(state), options, &scratch);
}

StatusOr<GlobalSequenceFit> RefitGlobalSequence(
    const Series& data, size_t keyword, size_t num_keywords,
    const GlobalSequenceFit& previous, const GlobalFitOptions& options) {
  if (data.observed_count() < 16) {
    return Status::InvalidArgument(
        "RefitGlobalSequence: need at least 16 observations");
  }
  if (data.size() < previous.estimate.size()) {
    return Status::InvalidArgument(
        "RefitGlobalSequence: data shorter than the previous fit");
  }
  FitState state;
  state.data = data;
  state.keyword = keyword;
  state.num_keywords = std::max<size_t>(num_keywords, 1);
  state.n = data.size();
  state.peak = std::max(data.MaxValue(), 1.0);
  state.coding = options.coding_model;
  state.use_numeric_jacobian = options.use_numeric_jacobian;
  state.guard = options.guard;
  state.params = previous.params;
  state.shocks = previous.shocks;
  // Extend cyclic shocks over the newly observed range: fresh occurrences
  // start at the shared strength and keyword tags follow this refit.
  for (Shock& shock : state.shocks) {
    shock.keyword = keyword;
    const size_t occ = shock.NumOccurrences(state.n);
    shock.global_strengths.resize(occ, shock.base_strength);
  }
  GlobalFitOptions warm_options = options;
  warm_options.max_outer_rounds = std::min(options.max_outer_rounds, 2);
  FitScratch scratch;
  return RunAlternation(std::move(state), warm_options, &scratch);
}

StatusOr<ModelParamSet> GlobalFit(const ActivityTensor& tensor,
                                  const GlobalFitOptions& options,
                                  std::vector<Status>* keyword_status,
                                  FitHealth* health) {
  if (tensor.empty()) {
    return Status::InvalidArgument("GlobalFit: empty tensor");
  }
  ModelParamSet params;
  params.num_keywords = tensor.num_keywords();
  params.num_locations = tensor.num_locations();
  params.num_ticks = tensor.num_ticks();
  // Keywords are independent (Algorithm 2 runs per keyword), so fit them
  // concurrently. ParallelTryMap lands each fit in its keyword's slot —
  // result and error paths both match the serial loop bit for bit — and
  // keeps every per-keyword outcome, so kSkipAndReport can use the
  // successful fits while surfacing the failed keywords.
  if (options.warm_start != nullptr &&
      tensor.num_ticks() < options.warm_start->num_ticks) {
    return Status::InvalidArgument(
        "GlobalFit: tensor spans " + std::to_string(tensor.num_ticks()) +
        " ticks but the warm-start model was fit on " +
        std::to_string(options.warm_start->num_ticks) +
        " — warm starts only extend, never shrink");
  }
  ParallelOptions popts;
  popts.num_threads = options.num_threads;
  popts.cancel = options.guard.cancel;
  std::vector<StatusOr<GlobalSequenceFit>> fits =
      ParallelTryMap<GlobalSequenceFit>(
          params.num_keywords, popts, [&](size_t i) {
            // Keywords covered by the warm-start model skip the cold
            // multi-start search and refit from the previous parameters;
            // keywords beyond it (e.g. added since the snapshot) fall
            // back to a cold fit.
            const ModelParamSet* warm = options.warm_start;
            if (warm != nullptr && i < warm->global.size()) {
              DSPOT_COUNT("global_fit.warm_starts", 1);
              GlobalSequenceFit previous;
              previous.params = warm->global[i];
              for (const Shock& shock : warm->shocks) {
                if (shock.keyword == i) previous.shocks.push_back(shock);
              }
              previous.estimate = Series(warm->num_ticks);
              return RefitGlobalSequence(tensor.GlobalSequence(i), i,
                                         params.num_keywords, previous,
                                         options);
            }
            DSPOT_COUNT("global_fit.cold_starts", 1);
            return FitGlobalSequence(tensor.GlobalSequence(i), i,
                                     params.num_keywords, options);
          });
  if (keyword_status) {
    keyword_status->clear();
    keyword_status->reserve(params.num_keywords);
    for (const StatusOr<GlobalSequenceFit>& fit : fits) {
      keyword_status->push_back(fit.status());
    }
  }
  // Cancellation is caller-initiated and fails the whole fit regardless
  // of the keyword-error policy.
  if (options.guard.cancel.cancelled()) {
    return Status::Cancelled("GlobalFit: cancelled");
  }
  // Deterministic assembly: keyword order, exactly like the serial loop.
  // Under kFail the first (lowest-index) error propagates; under
  // kSkipAndReport failed keywords keep default parameters and no shocks.
  FitHealth merged;
  params.global.reserve(params.num_keywords);
  for (StatusOr<GlobalSequenceFit>& fit : fits) {
    if (!fit.ok()) {
      if (options.on_keyword_error == KeywordErrorPolicy::kFail) {
        return fit.status();
      }
      params.global.push_back(KeywordGlobalParams());
      continue;
    }
    merged.Merge(fit->health);
    params.global.push_back(fit->params);
    for (Shock& shock : fit->shocks) {
      params.shocks.push_back(std::move(shock));
    }
  }
  if (health) {
    *health = merged;
  }
  return params;
}

}  // namespace dspot
