#ifndef DSPOT_OBS_EXPORT_H_
#define DSPOT_OBS_EXPORT_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace dspot {

/// Exporters for the dspot_obs registry. All three read a consistent
/// snapshot; none of them mutate metric state, so a fit can be exported
/// repeatedly (e.g. once per streaming refit round).

/// Human-readable summary: one aligned row per metric, counters first,
/// histograms with count/total/mean/min/max columns. Ends with '\n'.
std::string RenderMetricsTable(const ObsSnapshot& snapshot);

/// JSON object {"counters": [...], "gauges": [...], "histograms": [...]}
/// with shard-merged values. Names are JSON-escaped; non-finite doubles
/// are emitted as 0 (JSON has no NaN/Infinity).
std::string MetricsToJson(const ObsSnapshot& snapshot);

/// Chrome trace-event JSON ({"traceEvents": [...]}) for the given events,
/// loadable in chrome://tracing and Perfetto. Timestamps/durations are
/// microseconds relative to the registry's arming instant; tid is the
/// recording thread's obs shard slot.
std::string TraceEventsToJson(const std::vector<TraceEvent>& events);

/// Snapshot the registry and write MetricsToJson to `path`.
Status WriteMetricsJson(const std::string& path);

/// Write the registry's buffered trace events to `path` as Chrome trace
/// JSON. Valid (empty) even when tracing was never armed.
Status WriteChromeTrace(const std::string& path);

}  // namespace dspot

#endif  // DSPOT_OBS_EXPORT_H_
