#include "core/cost.h"

#include <algorithm>
#include <cmath>

#include "core/simulate.h"
#include "kernels/siv_kernel.h"
#include "mdl/mdl.h"

namespace dspot {

double ShockModelCostBits(const Shock& shock, size_t d, size_t l, size_t n,
                          bool include_local) {
  double bits = LogChoiceCost(d) + 3.0 * LogChoiceCost(n);
  // Global-level strengths: one float for the shared eps_0, plus one
  // (position + float) per occurrence that deviates from it.
  bits += kFloatCostBits;
  bits += static_cast<double>(shock.DeviatingOccurrences()) *
          (LogChoiceCost(std::max<size_t>(shock.global_strengths.size(), 2)) +
           kFloatCostBits);
  if (include_local && !shock.local_strengths.empty()) {
    size_t non_zero = 0;
    for (size_t r = 0; r < shock.local_strengths.rows(); ++r) {
      for (size_t c = 0; c < shock.local_strengths.cols(); ++c) {
        if (shock.local_strengths(r, c) != 0.0) ++non_zero;
      }
    }
    bits += static_cast<double>(non_zero) *
            (LogChoiceCost(d) + LogChoiceCost(l) + LogChoiceCost(n) +
             kFloatCostBits);
  }
  return bits;
}

double ShockTensorModelCostBits(const std::vector<Shock>& shocks, size_t d,
                                size_t l, size_t n, bool include_local) {
  double bits = LogStar(static_cast<double>(shocks.size()) + 1.0);
  for (const Shock& shock : shocks) {
    bits += ShockModelCostBits(shock, d, l, n, include_local);
  }
  return bits;
}

double KeywordGlobalModelCostBits(const KeywordGlobalParams& params,
                                  size_t n) {
  // B_G row {N, beta, delta, gamma} + i0: 5 floats.
  double bits = 5.0 * kFloatCostBits;
  // R_G row {eta_0, t_eta}: a float and a position, paid only when used.
  if (params.has_growth()) {
    bits += kFloatCostBits + LogChoiceCost(n);
  }
  return bits;
}

double GlobalKeywordCostBits(const Series& data, const Series& estimate,
                             const KeywordGlobalParams& params,
                             const std::vector<Shock>& shocks, size_t keyword,
                             size_t d, size_t n, CodingModel coding) {
  return GlobalKeywordCostBits(std::span<const double>(data.values()),
                               std::span<const double>(estimate.values()),
                               params, shocks, keyword, d, n, coding);
}

double GlobalKeywordCostBits(std::span<const double> data,
                             std::span<const double> estimate,
                             const KeywordGlobalParams& params,
                             const std::vector<Shock>& shocks, size_t keyword,
                             size_t d, size_t n, CodingModel coding) {
  double bits = KeywordGlobalModelCostBits(params, n);
  size_t count = 0;
  for (const Shock& shock : shocks) {
    if (shock.keyword != keyword) continue;
    bits += ShockModelCostBits(shock, d, /*l=*/1, n, /*include_local=*/false);
    ++count;
  }
  bits += LogStar(static_cast<double>(count) + 1.0);
  bits += CodingCost(data, estimate, coding);
  return bits;
}

double LocalSequenceCostBits(const Series& data, const Series& estimate,
                             size_t non_zero_strengths, size_t d, size_t l,
                             size_t n) {
  return LocalSequenceCostBits(std::span<const double>(data.values()),
                               std::span<const double>(estimate.values()),
                               non_zero_strengths, d, l, n);
}

double LocalSequenceCostBits(std::span<const double> data,
                             std::span<const double> estimate,
                             size_t non_zero_strengths, size_t d, size_t l,
                             size_t n) {
  // b^(L)_ij and r^(L)_ij.
  double bits = 2.0 * kFloatCostBits;
  bits += static_cast<double>(non_zero_strengths) *
          (LogChoiceCost(d) + LogChoiceCost(l) + LogChoiceCost(n) +
           kFloatCostBits);
  bits += GaussianCodingCost(data, estimate);
  return bits;
}

double TotalCostBits(const ActivityTensor& tensor,
                     const ModelParamSet& params) {
  CostWorkspace workspace;
  return TotalCostBits(tensor, params, &workspace);
}

double TotalCostBits(const ActivityTensor& tensor, const ModelParamSet& params,
                     CostWorkspace* workspace) {
  const size_t d = tensor.num_keywords();
  const size_t l = tensor.num_locations();
  const size_t n = tensor.num_ticks();
  double bits = LogStar(static_cast<double>(d)) +
                LogStar(static_cast<double>(l)) +
                LogStar(static_cast<double>(n));
  for (size_t i = 0; i < params.global.size(); ++i) {
    bits += KeywordGlobalModelCostBits(params.global[i], n);
  }
  // B_L and R_L: one float each per (keyword, location) once LocalFit ran.
  if (params.has_local()) {
    bits += 2.0 * static_cast<double>(d) * static_cast<double>(l) *
            kFloatCostBits;
  }
  bits += ShockTensorModelCostBits(params.shocks, d, l, n,
                                   /*include_local=*/params.has_local());
  // Data coding cost: local residuals when local parameters exist,
  // otherwise global residuals. Sequences are read through zero-copy views
  // and simulations reuse the workspace buffers / schedule cache.
  std::vector<double>& estimate = workspace->estimate;
  estimate.resize(n);
  if (params.has_local()) {
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < l; ++j) {
        SimulateLocalInto(params, i, j, &workspace->schedules, estimate);
        bits += GaussianCodingCost(tensor.LocalSequenceView(i, j),
                                   std::span<const double>(estimate));
      }
    }
  } else {
    // Global branch, batched: one structure-of-arrays pass simulates all d
    // keyword recurrences in lockstep (kernels::SimulateSivBatchInto runs
    // SIMD lanes across keywords), replacing d serial SimulateGlobalInto
    // calls. Every lane executes exactly the scalar recurrence, so the
    // estimates — and hence the coding bits — are bit-identical to the
    // unbatched loop.
    std::vector<double>& actual = workspace->global_actual;
    actual.resize(n);
    workspace->batch_population.resize(d);
    workspace->batch_beta.resize(d);
    workspace->batch_delta.resize(d);
    workspace->batch_gamma.resize(d);
    workspace->batch_i0.resize(d);
    workspace->batch_epsilon.assign(n * d, 1.0);
    workspace->batch_eta.assign(n * d, 0.0);
    workspace->batch_out.resize(n * d);
    for (size_t i = 0; i < d; ++i) {
      const KeywordGlobalParams& g = params.global[i];
      workspace->batch_population[i] = g.population;
      workspace->batch_beta[i] = g.beta;
      workspace->batch_delta[i] = g.delta;
      workspace->batch_gamma[i] = g.gamma;
      workspace->batch_i0[i] = g.i0;
      // Schedules may be shorter than the horizon (or empty); the packed
      // defaults of eps = 1 / eta = 0 reproduce the scalar kernel's
      // `t < size` guard.
      const std::span<const double> eps =
          workspace->schedules.GlobalEpsilon(params.shocks, i, n);
      for (size_t t = 0; t < std::min(eps.size(), n); ++t) {
        workspace->batch_epsilon[t * d + i] = eps[t];
      }
      if (g.has_growth()) {
        const std::span<const double> eta =
            workspace->schedules.Eta(g.growth_rate, g.growth_start, n);
        for (size_t t = 0; t < std::min(eta.size(), n); ++t) {
          workspace->batch_eta[t * d + i] = eta[t];
        }
      }
    }
    const kernels::SivBatchSoA batch{
        workspace->batch_population.data(), workspace->batch_beta.data(),
        workspace->batch_delta.data(),      workspace->batch_gamma.data(),
        workspace->batch_i0.data(),         workspace->batch_epsilon.data(),
        workspace->batch_eta.data()};
    kernels::SimulateSivBatchInto(batch, d, n, workspace->batch_out.data());
    for (size_t i = 0; i < d; ++i) {
      tensor.GlobalSequenceInto(i, actual);
      for (size_t t = 0; t < n; ++t) {
        estimate[t] = workspace->batch_out[t * d + i];
      }
      bits += GaussianCodingCost(std::span<const double>(actual),
                                 std::span<const double>(estimate));
    }
  }
  return bits;
}

}  // namespace dspot
