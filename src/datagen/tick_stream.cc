#include "datagen/tick_stream.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/random.h"

namespace dspot {

namespace {

/// Count of keyword `keyword` at tick `tick` — a pure function of
/// (seed, keyword, tick), so emission order and consumer parallelism can
/// never change the stream. A fresh child engine per record trades a few
/// hundred nanoseconds for that order-independence; the alternative (one
/// live engine per keyword) would pin ~2.5 KB of mt19937 state per keyword
/// across a 100k-keyword sweep.
double TickCount(const TickStreamConfig& config, uint32_t keyword,
                 size_t tick) {
  Random rng = Random(config.seed).Child(keyword).Child(tick);
  double rate = config.base_rate;
  const bool hot = keyword < config.hot_keywords;
  if (hot && tick >= config.burst_start &&
      tick < config.burst_start + config.burst_width) {
    rate *= std::max(config.burst_strength, 1.0);
  }
  return static_cast<double>(rng.Poisson(rate));
}

}  // namespace

std::string TickStreamKeywordName(uint32_t keyword) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "kw%06u", keyword);
  return std::string(buf);
}

void ForEachStreamTick(const TickStreamConfig& config,
                       const std::function<void(const TickRecord&)>& fn) {
  const size_t max_ticks = std::max(config.num_ticks, config.quiet_ticks);
  for (size_t t = 0; t < max_ticks; ++t) {
    for (size_t i = 0; i < config.num_keywords; ++i) {
      const bool hot = i < config.hot_keywords;
      const size_t emitted = hot ? config.num_ticks : config.quiet_ticks;
      if (t >= emitted) {
        continue;
      }
      TickRecord record;
      record.keyword = static_cast<uint32_t>(i);
      record.timestamp =
          config.origin + static_cast<int64_t>(t) * config.ticks_resolution;
      record.count = TickCount(config, record.keyword, t);
      fn(record);
    }
  }
}

std::vector<TickRecord> GenerateTickStream(const TickStreamConfig& config) {
  std::vector<TickRecord> records;
  ForEachStreamTick(config,
                    [&records](const TickRecord& r) { records.push_back(r); });
  return records;
}

bool WriteTickStreamCsv(const TickStreamConfig& config,
                        const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  os << "keyword,location,timestamp,count\n";
  ForEachStreamTick(config, [&os](const TickRecord& r) {
    os << TickStreamKeywordName(r.keyword) << ",all," << r.timestamp << ','
       << r.count << '\n';
  });
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace dspot
