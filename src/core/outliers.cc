#include "core/outliers.h"

#include <algorithm>

namespace dspot {

StatusOr<std::vector<LocationReaction>> ScoreLocationReactions(
    const ModelParamSet& params, size_t keyword,
    const OutlierOptions& options) {
  if (keyword >= params.global.size()) {
    return Status::OutOfRange("ScoreLocationReactions: bad keyword index");
  }
  if (!params.has_local()) {
    return Status::FailedPrecondition(
        "ScoreLocationReactions: LocalFit has not run");
  }
  const std::vector<size_t> shock_indices = params.ShockIndicesFor(keyword);
  if (shock_indices.empty()) {
    return Status::FailedPrecondition(
        "ScoreLocationReactions: keyword has no detected events");
  }

  // Global reference level: mean shared strength across the keyword's
  // events (weighted by occurrences).
  double global_sum = 0.0;
  size_t global_cells = 0;
  for (size_t k : shock_indices) {
    const Shock& shock = params.shocks[k];
    for (double s : shock.global_strengths) {
      global_sum += s;
      ++global_cells;
    }
  }
  const double global_mean =
      global_cells == 0 ? 0.0
                        : global_sum / static_cast<double>(global_cells);

  std::vector<LocationReaction> out(params.num_locations);
  for (size_t j = 0; j < params.num_locations; ++j) {
    LocationReaction& r = out[j];
    r.location = j;
    double sum = 0.0;
    size_t cells = 0;
    size_t zeros = 0;
    for (size_t k : shock_indices) {
      const Shock& shock = params.shocks[k];
      for (size_t m = 0; m < shock.local_strengths.rows(); ++m) {
        const double s = j < shock.local_strengths.cols()
                             ? shock.local_strengths(m, j)
                             : 0.0;
        sum += s;
        if (s == 0.0) ++zeros;
        ++cells;
      }
    }
    r.mean_strength = cells == 0 ? 0.0 : sum / static_cast<double>(cells);
    r.participation_ratio =
        global_mean > 0.0 ? r.mean_strength / global_mean : 0.0;
    r.zero_fraction =
        cells == 0 ? 1.0 : static_cast<double>(zeros) / static_cast<double>(cells);
    r.is_outlier = r.participation_ratio < options.participation_threshold ||
                   r.zero_fraction >= options.zero_fraction_threshold;
  }
  return out;
}

StatusOr<std::vector<size_t>> FindOutlierLocations(
    const ModelParamSet& params, size_t keyword,
    const OutlierOptions& options) {
  DSPOT_ASSIGN_OR_RETURN(std::vector<LocationReaction> reactions,
                         ScoreLocationReactions(params, keyword, options));
  std::vector<size_t> out;
  for (const LocationReaction& r : reactions) {
    if (r.is_outlier) {
      out.push_back(r.location);
    }
  }
  return out;
}

}  // namespace dspot
