// Unit tests for src/mdl: universal integer code and Gaussian coding cost.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"
#include "mdl/mdl.h"

namespace dspot {
namespace {

TEST(Mdl, LogStarSmallValues) {
  // log*(1) = log2(c_omega) only.
  EXPECT_NEAR(LogStar(1.0), 1.5186, 1e-3);
  EXPECT_NEAR(LogStar(0.0), 1.5186, 1e-3);
}

TEST(Mdl, LogStarMonotone) {
  double prev = LogStar(1.0);
  for (double x : {2.0, 4.0, 16.0, 256.0, 65536.0}) {
    const double cur = LogStar(x);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(Mdl, LogStarKnownExpansion) {
  // log*(16) = log2(16) + log2(4) + log2(2) + log2(1)=0 terms + c.
  EXPECT_NEAR(LogStar(16.0), 4.0 + 2.0 + 1.0 + 1.5186, 1e-3);
}

TEST(Mdl, LogChoiceCost) {
  EXPECT_DOUBLE_EQ(LogChoiceCost(1), 0.0);
  EXPECT_DOUBLE_EQ(LogChoiceCost(0), 0.0);
  EXPECT_DOUBLE_EQ(LogChoiceCost(8), 3.0);
}

TEST(Mdl, GaussianCodingCostEmptyIsZero) {
  EXPECT_DOUBLE_EQ(GaussianCodingCost(std::vector<double>{}), 0.0);
}

TEST(Mdl, GaussianCodingCostSkipsMissing) {
  std::vector<double> a = {1.0, -1.0};
  std::vector<double> b = {1.0, kMissingValue, -1.0, kMissingValue};
  EXPECT_NEAR(GaussianCodingCost(a), GaussianCodingCost(b), 1e-9);
}

TEST(Mdl, SmallerResidualsCodeCheaper) {
  Random rng(9);
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 200; ++i) {
    const double g = rng.Gaussian();
    small.push_back(0.5 * g);
    large.push_back(5.0 * g);
  }
  EXPECT_LT(GaussianCodingCost(small), GaussianCodingCost(large));
}

TEST(Mdl, CostScalesWithCount) {
  std::vector<double> r100(100);
  std::vector<double> r200(200);
  Random rng(10);
  for (double& v : r100) v = rng.Gaussian();
  for (double& v : r200) v = rng.Gaussian();
  EXPECT_LT(GaussianCodingCost(r100), GaussianCodingCost(r200));
}

TEST(Mdl, SeriesOverloadMatchesVectorForm) {
  Series actual(std::vector<double>{1, 2, 3, 4});
  Series estimate(std::vector<double>{1.1, 1.9, 3.2, 3.7});
  std::vector<double> residuals;
  for (size_t t = 0; t < 4; ++t) residuals.push_back(actual[t] - estimate[t]);
  EXPECT_NEAR(GaussianCodingCost(actual, estimate),
              GaussianCodingCost(residuals), 1e-9);
}

TEST(Mdl, SingleResidualCostsZero) {
  // One residual cannot support a variance estimate. The pre-fix code
  // returned ~-18.6 bits (0.5 * log2(2*pi*1e-12) with the default floor),
  // a negative cost that made one-observation windows look like the best
  // possible model.
  const double cost = GaussianCodingCost(std::vector<double>{3.5});
  EXPECT_DOUBLE_EQ(cost, 0.0);
  // Same rule when every residual but one is missing.
  EXPECT_DOUBLE_EQ(GaussianCodingCost(std::vector<double>{
                       kMissingValue, -2.0, kMissingValue}),
                   0.0);
}

TEST(Mdl, SingleObservedPairCostsZero) {
  Series actual(std::vector<double>{kMissingValue, 4.0, kMissingValue});
  Series estimate(std::vector<double>{1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(GaussianCodingCost(actual, estimate), 0.0);
}

TEST(Mdl, InfiniteResidualsAreSkipped) {
  // +-inf residuals (e.g. from a diverged simulation) are not "missing" by
  // the NaN convention, but they must not poison the cost into NaN.
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> clean = {1.0, -1.0, 0.5, -0.5};
  std::vector<double> dirty = {1.0, inf, -1.0, 0.5, -inf, -0.5};
  EXPECT_NEAR(GaussianCodingCost(clean), GaussianCodingCost(dirty), 1e-9);

  Series actual(std::vector<double>{1.0, inf, 2.0, 3.0});
  Series estimate(std::vector<double>{0.5, 0.0, 1.5, 2.5});
  EXPECT_TRUE(std::isfinite(GaussianCodingCost(actual, estimate)));
}

TEST(Mdl, ZeroSigmaFloorConstantResidualsFinite) {
  // sigma_floor == 0 with exactly constant residuals used to evaluate
  // ss / sigma2 = 0 / 0 = NaN.
  std::vector<double> constant(16, 2.0);
  const double cost = GaussianCodingCost(constant, /*sigma_floor=*/0.0);
  EXPECT_TRUE(std::isfinite(cost));
}

TEST(Mdl, SigmaFloorPreventsDegenerateCodes) {
  // Identical residuals: with the floor, the cost stays finite.
  std::vector<double> zeros(50, 0.0);
  const double cost = GaussianCodingCost(zeros);
  EXPECT_TRUE(std::isfinite(cost));
}

/// Property sweep: the coding cost per residual approaches the entropy of
/// the generating Gaussian (within a modest tolerance), for several sigmas.
class GaussianCodingEntropy : public ::testing::TestWithParam<double> {};

TEST_P(GaussianCodingEntropy, ApproachesEntropy) {
  const double sigma = GetParam();
  Random rng(42);
  std::vector<double> residuals(20000);
  for (double& v : residuals) v = rng.Gaussian(0.0, sigma);
  const double bits_per_obs =
      GaussianCodingCost(residuals) / static_cast<double>(residuals.size());
  const double entropy = 0.5 * std::log2(2.0 * M_PI * M_E * sigma * sigma);
  EXPECT_NEAR(bits_per_obs, entropy, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, GaussianCodingEntropy,
                         ::testing::Values(0.5, 1.0, 3.0, 10.0));

TEST(PoissonCoding, PerfectPredictionCheapest) {
  Series actual(std::vector<double>{3, 7, 2, 9});
  Series perfect = actual;
  Series off(std::vector<double>{9, 2, 7, 3});
  EXPECT_LT(PoissonCodingCost(actual, perfect),
            PoissonCodingCost(actual, off));
}

TEST(PoissonCoding, SkipsMissing) {
  Series a(std::vector<double>{5, kMissingValue});
  Series e(std::vector<double>{5, 100});
  Series a2(std::vector<double>{5});
  Series e2(std::vector<double>{5});
  EXPECT_NEAR(PoissonCodingCost(a, e), PoissonCodingCost(a2, e2), 1e-9);
}

TEST(PoissonCoding, HeteroscedasticTolerance) {
  // The same absolute error costs fewer bits on top of a large mean than
  // a small one (variance scales with the mean).
  Series small_actual(std::vector<double>{8});
  Series small_estimate(std::vector<double>{4});
  Series big_actual(std::vector<double>{104});
  Series big_estimate(std::vector<double>{100});
  EXPECT_GT(PoissonCodingCost(small_actual, small_estimate),
            PoissonCodingCost(big_actual, big_estimate));
}

TEST(PoissonCoding, FiniteOnZeroPrediction) {
  Series actual(std::vector<double>{5});
  Series estimate(std::vector<double>{0.0});
  EXPECT_TRUE(std::isfinite(PoissonCodingCost(actual, estimate)));
}

TEST(PoissonCoding, DispatchMatches) {
  Series a(std::vector<double>{1, 2, 3});
  Series e(std::vector<double>{1.2, 2.1, 2.8});
  EXPECT_DOUBLE_EQ(CodingCost(a, e, CodingModel::kGaussian),
                   GaussianCodingCost(a, e));
  EXPECT_DOUBLE_EQ(CodingCost(a, e, CodingModel::kPoisson),
                   PoissonCodingCost(a, e));
}

}  // namespace
}  // namespace dspot
