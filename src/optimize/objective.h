#ifndef DSPOT_OPTIMIZE_OBJECTIVE_H_
#define DSPOT_OPTIMIZE_OBJECTIVE_H_

#include <functional>
#include <span>
#include <vector>

#include "common/status.h"

namespace dspot {

/// A vector-valued residual function r(p): R^np -> R^m, as consumed by the
/// Levenberg-Marquardt solver. On success, fills `*residuals` (the callee
/// chooses m, but it must be the same on every call). Non-OK status aborts
/// the optimization.
using ResidualFn =
    std::function<Status(const std::vector<double>& params,
                         std::vector<double>* residuals)>;

/// Buffer-writing flavor of ResidualFn: writes r(p) into `residuals`, whose
/// size is fixed up front by the caller (m is passed to the solver, not
/// discovered from the callee). Implementations must fill every slot and
/// must not allocate on the steady-state path — this is the hot signature
/// the workspace-based Levenberg-Marquardt drives O(n·p) times per
/// iteration.
using ResidualIntoFn = std::function<Status(std::span<const double> params,
                                            std::span<double> residuals)>;

/// A scalar objective f(p): R^np -> R, as consumed by Nelder-Mead. Lower is
/// better. Implementations should return +inf (not an error) for infeasible
/// points so the simplex can move away from them.
using ScalarFn = std::function<double(const std::vector<double>& params)>;

/// Box constraints for a parameter vector. Empty bounds mean unconstrained.
struct Bounds {
  std::vector<double> lower;
  std::vector<double> upper;

  /// True iff the bounds arrays are empty (no constraints).
  bool empty() const { return lower.empty() && upper.empty(); }

  /// Clamps `p` element-wise into the box (no-op if unconstrained).
  void Clamp(std::vector<double>* p) const;
  void Clamp(std::span<double> p) const;

  /// True iff `p` lies within the box.
  bool Contains(const std::vector<double>& p) const;
};

}  // namespace dspot

#endif  // DSPOT_OPTIMIZE_OBJECTIVE_H_
