// Event detection walkthrough: the scenario the paper's introduction
// motivates — given 11 years of weekly search volume for "Harry Potter",
// automatically answer: (a) were there external shocks? (b) when, how
// wide, how strong? (c) which ones are cyclic?
//
// Demonstrates: GenerateTensor, FitDspotSingle, shock inspection, and the
// MDL cost of the final model.

#include <cstdio>

#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"

namespace {

/// Week tick -> rough "YYYY-MM" on the paper's axis (tick 0 = Jan 2004).
void PrintCalendar(size_t tick) {
  std::printf("%zu-%02zu", 2004 + tick / 52, 1 + (tick % 52) * 12 / 52);
}

}  // namespace

int main() {
  using namespace dspot;  // NOLINT: example brevity

  // "Harry Potter": biennial July releases + November premieres + one
  // non-cyclic spike, on top of SIV word-of-mouth dynamics.
  GeneratorConfig config = GoogleTrendsConfig();
  auto sequence = GenerateGlobalSequence(HarryPotterScenario(), config);
  if (!sequence.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 sequence.status().ToString().c_str());
    return 1;
  }

  auto fit = FitDspotSingle(*sequence);
  if (!fit.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fit.status().ToString().c_str());
    return 1;
  }

  std::printf("Detected %zu external event(s) in %zu weekly ticks "
              "(MDL total %.0f bits, fit RMSE %.2f):\n\n",
              fit->params.ShockCountFor(0), sequence->size(),
              fit->total_cost_bits, fit->global_rmse[0]);

  for (const Shock& shock : fit->params.shocks) {
    std::printf("  event starting ");
    PrintCalendar(shock.start);
    if (shock.IsCyclic()) {
      std::printf(", recurring every %.1f year(s)",
                  static_cast<double>(shock.period) / 52.0);
    } else {
      std::printf(" (one-shot)");
    }
    std::printf(", %zu week(s) wide, strength %.2f\n", shock.width,
                shock.base_strength);
    if (shock.IsCyclic()) {
      std::printf("    occurrence strengths:");
      for (double s : shock.global_strengths) {
        std::printf(" %.1f", s);
      }
      std::printf("\n");
    }
  }

  std::printf("\nGround truth: biennial events from 2005-07 and 2005-11, "
              "and a one-shot spike in 2005-05.\n");
  return 0;
}
