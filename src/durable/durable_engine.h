#ifndef DSPOT_DURABLE_DURABLE_ENGINE_H_
#define DSPOT_DURABLE_DURABLE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/statusor.h"
#include "durable/durable_file.h"
#include "durable/wal.h"
#include "stream/stream_engine.h"

namespace dspot {

/// dspot_durable — crash durability for the streaming engine.
///
/// A StreamEngine alone persists only at explicit SaveState calls: kill
/// the process and every tick appended since the last save is gone. A
/// DurableEngine wraps the same engine with a write-ahead log and
/// atomic checkpoints so a process that is SIGKILLed at *any* instant —
/// mid-append, mid-flush, mid-checkpoint — recovers to a state that is a
/// valid prefix of what an uninterrupted run would have produced:
///
///  * Every accepted operation (keyword intern, append, flush) is applied
///    to the in-memory engine and then logged as one CRC-framed WAL
///    record, fsynced per the FsyncPolicy.
///  * Checkpoint() writes the engine's canonical EncodeState through the
///    temp -> fsync -> rename -> fsync-dir sequence, rotates the WAL to a
///    fresh segment, and prunes files no surviving checkpoint needs. The
///    two newest checkpoints are always retained, so a checkpoint that is
///    later found corrupt (bad sector, hostile edit) still has a fallback.
///  * Open() on a non-empty directory *is* recovery: load the newest
///    checkpoint that validates, replay the WAL tail through the ordinary
///    EnsureKeyword/AppendById/Flush paths (idempotent — records at or
///    below the checkpoint's sequence number are skipped), truncate any
///    torn trailing record at the last valid CRC frame, and resume
///    logging where the log left off. Mid-log corruption (an invalid
///    record *followed* by a valid one) is never skipped: it returns a
///    located kDataLoss.
///
/// What is durable when: with kEveryN (n=1) every acknowledged operation;
/// with kOnFlush every completed Flush(); with kNever whatever the page
/// cache retains — which, for a process kill (as opposed to power loss),
/// is still everything that was written. Rejected appends are not logged,
/// so the engine's `rejected` counter resets to its last-checkpoint value
/// on recovery; accepted data is never affected.
///
/// THREAD SAFETY: same single-writer contract as StreamEngine — one
/// thread calls Append/Flush/Checkpoint; Forecast reads on the inner
/// engine stay lock-free from any thread.

struct DurableOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kOnFlush;
  /// For kEveryN: fsync after this many records. 1 = every record.
  size_t fsync_every_n = 32;
  /// Checkpoint automatically after this many flushes (0 = only explicit
  /// Checkpoint() calls).
  size_t checkpoint_every_flushes = 8;
  /// Also checkpoint when the live WAL segment exceeds this many bytes
  /// (bounds replay time after a crash). 0 = no byte trigger.
  uint64_t max_wal_bytes = 64ull << 20;
  /// Retry-with-backoff for transient write failures.
  RetryPolicy retry;
  /// Engine options. On recovery the semantic knobs (tick bucketing, ring
  /// capacity, triage thresholds) come from the checkpoint — this field
  /// then supplies only the runtime knobs (threads, budgets, fit
  /// options), exactly like StreamEngine::LoadState.
  StreamOptions stream;
};

/// What Open() found and did.
struct RecoveryReport {
  bool fresh = false;            ///< empty directory: no recovery needed
  bool used_checkpoint = false;  ///< state seeded from a checkpoint file
  uint64_t checkpoint_seq = 0;   ///< sequence of the checkpoint used
  /// Newer checkpoints that failed validation and were skipped. Always 0
  /// after a plain crash — only damaged files take the fallback path.
  size_t checkpoints_discarded = 0;
  uint64_t replayed_interns = 0;
  uint64_t replayed_appends = 0;
  uint64_t replayed_flushes = 0;
  /// Torn trailing bytes truncated from the final segment.
  uint64_t truncated_bytes = 0;
  /// Sequence number of the last applied record.
  uint64_t last_seq = 0;
};

class DurableEngine {
 public:
  /// Opens (creating or recovering) a durable engine rooted at `dir`. A
  /// fresh directory is initialized with an empty checkpoint so the
  /// semantic options are durable from the first append. See the class
  /// comment for the recovery contract.
  static StatusOr<std::unique_ptr<DurableEngine>> Open(
      const std::string& dir, const DurableOptions& options);

  /// Alias for Open emphasizing the crash-recovery path.
  static StatusOr<std::unique_ptr<DurableEngine>> Recover(
      const std::string& dir, const DurableOptions& options) {
    return Open(dir, options);
  }

  DurableEngine(const DurableEngine&) = delete;
  DurableEngine& operator=(const DurableEngine&) = delete;

  /// StreamEngine::EnsureKeyword + a kIntern WAL record when the keyword
  /// is new (intern order is part of the engine state).
  StatusOr<uint32_t> EnsureKeyword(std::string_view keyword);

  /// StreamEngine::Append/AppendById + a kAppend WAL record. The record
  /// is logged only after the engine accepts the tick; a WAL write
  /// failure is returned to the caller (the in-memory engine keeps the
  /// tick — it is simply not durable yet).
  Status Append(std::string_view keyword, std::string_view location,
                int64_t timestamp, double count);
  Status AppendById(uint32_t keyword, int64_t timestamp, double count);

  /// StreamEngine::Flush + a kFlushMark record (+ fsync under kOnFlush),
  /// then an automatic Checkpoint() when the configured interval or WAL
  /// byte cap is reached.
  StatusOr<StreamFlushReport> Flush();

  /// Writes an atomic checkpoint of the current state, rotates the WAL,
  /// and prunes files older than the previous checkpoint. A failed
  /// checkpoint (injected or real I/O error) leaves the previous
  /// checkpoint and the live WAL fully intact — the engine keeps running
  /// and the next attempt may succeed.
  Status Checkpoint();

  /// The wrapped engine: forecasts, stats, EncodeState.
  StreamEngine& engine() { return *engine_; }
  const StreamEngine& engine() const { return *engine_; }

  const RecoveryReport& recovery() const { return recovery_; }
  const std::string& dir() const { return dir_; }
  uint64_t last_seq() const { return wal_->next_seq() - 1; }
  uint64_t wal_segment_bytes() const { return wal_->size(); }
  uint64_t last_checkpoint_seq() const { return last_checkpoint_seq_; }

 private:
  DurableEngine(std::string dir, DurableOptions options)
      : dir_(std::move(dir)), options_(std::move(options)) {}

  /// Appends one record and applies the fsync policy (`boundary` marks a
  /// flush-completion record, the kOnFlush sync point).
  Status LogRecord(WalRecordType type, uint64_t a, uint64_t b, uint64_t c,
                   std::string_view name, bool boundary);

  /// Applies one replayed WAL record through the ordinary engine paths.
  Status ApplyRecord(const WalRecord& rec);

  Status OpenFreshSegment(uint64_t checkpoint_seq);
  Status PruneObsoleteFiles();

  std::string dir_;
  DurableOptions options_;
  std::unique_ptr<StreamEngine> engine_;
  std::unique_ptr<WalWriter> wal_;
  RecoveryReport recovery_;
  size_t records_since_sync_ = 0;
  size_t flushes_since_checkpoint_ = 0;
  static constexpr uint64_t kNoCheckpoint = ~uint64_t{0};
  uint64_t last_checkpoint_seq_ = kNoCheckpoint;
  uint64_t previous_checkpoint_seq_ = kNoCheckpoint;
};

/// File-name helpers shared with tests: zero-padded so lexicographic and
/// numeric order agree.
std::string WalSegmentFileName(uint64_t base_seq);
std::string CheckpointFileName(uint64_t seq);

}  // namespace dspot

#endif  // DSPOT_DURABLE_DURABLE_ENGINE_H_
