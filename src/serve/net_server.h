#ifndef DSPOT_SERVE_NET_SERVER_H_
#define DSPOT_SERVE_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "serve/protocol.h"
#include "serve/serve_engine.h"

namespace dspot {

/// dspot_serve's TCP transport: a single-threaded, level-triggered epoll
/// event loop speaking the DSRQ/DSRP frame codec over non-blocking
/// sockets, in front of a ServeEngine.
///
/// - Frames arrive split at arbitrary byte boundaries; each connection
///   owns a FrameAssembler that reassembles them incrementally.
/// - An optional first frame ("DSRH" tenant handshake) binds the
///   connection to an admission tenant; every request submitted on it
///   then competes only inside that tenant's quota slice.
/// - Replies return to the event loop through ServeEngine callbacks and
///   a wake pipe, are re-ordered back into per-connection request order,
///   and are written with backpressure: a reply that does not flush in
///   one write() arms EPOLLOUT, and a connection whose unflushed bytes
///   exceed max_write_buffer_bytes stops being read until it drains.
/// - A protocol violation (bad tag, undecodable payload, over-cap frame
///   length) tears down THAT connection with a located error on stderr;
///   the process and every other connection keep serving.
/// - Shutdown() is async-signal-safe: it closes the listener, lets
///   in-flight replies complete and flush, then returns from Run().
///
/// DETERMINISM: one connection's requests are submitted in frame arrival
/// order and its replies are written in the same order, so a single
/// connection that never overflows the admission queue receives replies
/// byte-identical to the stdin/stdout pipe serving the same stream — at
/// any worker thread count (serve_net_smoke holds the CLI to this).

struct NetServerOptions {
  /// Listen address; the default binds loopback only — serving a public
  /// interface is an explicit operator decision.
  std::string bind_address = "127.0.0.1";
  /// Listen port; 0 asks the kernel for an ephemeral port (read it back
  /// with port() after Start()).
  uint16_t port = 0;
  /// Accepted-connection cap; arrivals beyond it are accepted and
  /// immediately closed so the client sees EOF, not a hung SYN.
  size_t max_conns = 256;
  /// Per-connection unflushed reply bytes above which the server stops
  /// READING that connection (admission backpressure) until the client
  /// drains below half of this; EPOLLOUT stays armed throughout.
  size_t max_write_buffer_bytes = 4u << 20;
  /// How long Shutdown() lets connections finish flushing before they
  /// are force-closed (a drain must not hang on a client that stopped
  /// reading).
  double drain_timeout_ms = 5000.0;
};

/// Transport-level counters (engine-level counts live in ServeStats).
struct NetServerStats {
  uint64_t accepted = 0;
  uint64_t rejected_at_capacity = 0;  ///< accept()ed then closed: over cap
  uint64_t closed = 0;                ///< connections fully torn down
  uint64_t desync_teardowns = 0;      ///< closed due to protocol violations
  uint64_t handshakes = 0;            ///< DSRH frames accepted
  uint64_t requests = 0;              ///< request frames submitted
  uint64_t replies = 0;               ///< reply frames queued to the wire
  uint64_t backpressure_pauses = 0;   ///< reads paused on a full write buffer
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

class NetServer {
 public:
  /// `engine` must outlive the server. Construction is cheap; the socket
  /// work happens in Start().
  NetServer(ServeEngine* engine, const NetServerOptions& options);

  /// Closes every fd still open (Run() must have returned, or never run).
  /// LIFETIME: reply callbacks registered with the engine reference this
  /// server, so call engine->Stop() (which drains them) between Run()
  /// returning and destroying the server.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Creates, binds, and listens the server socket and the epoll/wake
  /// machinery. After Ok, port() is the bound port.
  Status Start();

  /// The bound listen port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Runs the event loop on the calling thread until Shutdown() — accept,
  /// read, submit, reorder, flush. Returns Ok after the drain completes;
  /// a fatal transport error (epoll itself failing) is returned, but
  /// per-connection errors never are.
  Status Run();

  /// Requests a graceful drain: async-signal-safe (a flag store and a
  /// pipe write), callable from any thread or signal handler, idempotent.
  void Shutdown();

  NetServerStats stats() const;

 private:
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    std::string peer;  ///< "addr:port", the error-location context
    FrameAssembler assembler;
    std::string tenant;        ///< bound by the handshake; "" = default
    bool saw_first_frame = false;
    bool read_closed = false;  ///< client half-closed (or we are draining)
    bool paused_read = false;  ///< backpressure: not watching EPOLLIN
    uint64_t next_submit_seq = 0;
    uint64_t next_write_seq = 0;
    uint64_t in_flight = 0;    ///< submitted, reply not yet queued to wire
    std::map<uint64_t, ServeReply> ready;  ///< out-of-order replies
    std::vector<uint8_t> wbuf;
    size_t wpos = 0;
    bool want_write = false;   ///< EPOLLOUT armed

    explicit Conn(std::string peer_label)
        : peer(std::move(peer_label)), assembler("conn " + peer) {}
    size_t unflushed() const { return wbuf.size() - wpos; }
  };

  struct Completion {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    ServeReply reply;
  };

  void AcceptReady();
  void HandleReadable(Conn& conn);
  /// Decodes and dispatches one frame; false = the connection was torn
  /// down and must not be touched again.
  bool HandleFrame(Conn& conn, const std::vector<uint8_t>& payload);
  void ProcessCompletions();
  /// Encodes ready in-order replies onto the write buffer and flushes.
  bool PumpReplies(Conn& conn);
  bool FlushWrites(Conn& conn);
  void UpdateInterest(Conn& conn);
  void Teardown(Conn& conn, const Status& why, bool protocol_error);
  /// Closes the connection if nothing remains to read, execute, or flush.
  bool MaybeRetire(Conn& conn);
  void Wake();

  ServeEngine* engine_;
  NetServerOptions options_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  std::atomic<bool> shutdown_requested_{false};
  bool draining_ = false;

  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, Conn> conns_;  ///< id -> connection

  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  mutable std::mutex stats_mu_;
  NetServerStats stats_;
};

}  // namespace dspot

#endif  // DSPOT_SERVE_NET_SERVER_H_
