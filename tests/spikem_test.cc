// Tests for src/baselines/spikem: the rise-and-fall information-diffusion
// model.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/spikem.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

SpikeMParams CanonicalBurst() {
  SpikeMParams p;
  p.population = 200.0;
  p.beta = 0.8;
  p.shock_start = 20;
  p.shock_size = 15.0;
  p.background = 0.0;
  return p;
}

TEST(SpikeM, SilentBeforeShock) {
  const Series d = SimulateSpikeM(CanonicalBurst(), 100);
  for (size_t t = 0; t <= 20; ++t) {
    EXPECT_DOUBLE_EQ(d[t], 0.0) << "tick " << t;
  }
  EXPECT_GT(d[22], 0.0);
}

TEST(SpikeM, RiseAndFallShape) {
  const Series d = SimulateSpikeM(CanonicalBurst(), 200);
  size_t peak = ArgMax(d.values());
  ASSERT_NE(peak, kNpos);
  EXPECT_GT(peak, 20u);
  EXPECT_LT(peak, 80u);
  // After the peak the burst decays substantially.
  EXPECT_LT(d[199], d[peak] * 0.25);
}

TEST(SpikeM, TotalInformedBoundedByPopulation) {
  SpikeMParams p = CanonicalBurst();
  p.beta = 3.0;  // aggressive contagion
  const Series d = SimulateSpikeM(p, 300);
  EXPECT_LE(d.SumValue(), p.population + 1e-6);
  for (size_t t = 0; t < d.size(); ++t) {
    EXPECT_GE(d[t], 0.0);
  }
}

TEST(SpikeM, BackgroundKeepsFloorActive) {
  SpikeMParams p = CanonicalBurst();
  p.background = 2.0;
  const Series d = SimulateSpikeM(p, 60);
  // Even before the shock, the background produces activity (from t=1).
  EXPECT_GT(d[5], 0.0);
}

TEST(SpikeM, PeriodicModulationCreatesDips) {
  SpikeMParams p = CanonicalBurst();
  p.period = 7.0;
  p.periodicity_amplitude = 0.9;
  const Series with = SimulateSpikeM(p, 120);
  p.periodicity_amplitude = 0.0;
  const Series without = SimulateSpikeM(p, 120);
  // Modulated curve differs and dips below the unmodulated one somewhere
  // near the peak.
  bool dips = false;
  for (size_t t = 20; t < 60; ++t) {
    if (with[t] < 0.6 * without[t] && without[t] > 1.0) dips = true;
  }
  EXPECT_TRUE(dips);
}

TEST(SpikeM, FitRecoversBurst) {
  const Series data = SimulateSpikeM(CanonicalBurst(), 150);
  auto fit = FitSpikeM(data);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  const double range = data.MaxValue() - data.MinValue();
  EXPECT_LT(fit->rmse, 0.1 * range);
  // Shock start within a few ticks of the truth.
  EXPECT_NEAR(static_cast<double>(fit->params.shock_start), 20.0, 6.0);
}

TEST(SpikeM, FitRejectsTinySeries) {
  EXPECT_FALSE(FitSpikeM(Series(6)).ok());
}

/// Property sweep: the simulation stays finite and within population
/// bounds across a parameter grid.
class SpikeMInvariantProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SpikeMInvariantProperty, FiniteAndBounded) {
  const auto [beta, shock] = GetParam();
  SpikeMParams p;
  p.population = 120.0;
  p.beta = beta;
  p.shock_start = 10;
  p.shock_size = shock;
  p.background = 0.5;
  const Series d = SimulateSpikeM(p, 250);
  double total = 0.0;
  for (size_t t = 0; t < d.size(); ++t) {
    ASSERT_TRUE(std::isfinite(d[t]));
    ASSERT_GE(d[t], 0.0);
    total += d[t];
  }
  EXPECT_LE(total, 120.0 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, SpikeMInvariantProperty,
    ::testing::Combine(::testing::Values(0.1, 0.8, 2.5, 8.0),
                       ::testing::Values(1.0, 20.0, 500.0)));

}  // namespace
}  // namespace dspot
