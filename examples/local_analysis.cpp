// Local (per-country) analysis walkthrough — the paper's area-specificity
// story (P2): fit a keyword across many countries, find which countries
// follow the global trend and which are outliers, and save the tensor to
// CSV for external tooling.
//
// Demonstrates: GenerateTensor with outliers, FitDspot (GLOBALFIT +
// LOCALFIT), per-location parameters B_L / s^(L), tensor CSV export.

#include <cstdio>

#include "core/dspot.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "tensor/tensor_io.h"
#include "timeseries/metrics.h"

int main() {
  using namespace dspot;  // NOLINT: example brevity

  // "Ebola" across 12 countries, 3 of which are low-connectivity outliers
  // (the paper's LA / NP / CG).
  GeneratorConfig config = GoogleTrendsConfig();
  config.num_locations = 12;
  config.num_outlier_locations = 3;
  auto generated = GenerateTensor({EbolaScenario()}, config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const ActivityTensor& tensor = generated->tensor;

  // Persist the raw tensor (long-form CSV) so it can be re-loaded or
  // inspected outside this program.
  const std::string csv_path = "/tmp/dspot_ebola_tensor.csv";
  if (Status s = SaveTensorCsv(tensor, csv_path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zux%zux%zu tensor to %s\n\n", tensor.num_keywords(),
              tensor.num_locations(), tensor.num_ticks(), csv_path.c_str());

  // Full two-layer fit, using every hardware thread. The result is
  // bit-identical to a serial fit (num_threads = 1); the knob only trades
  // wall-clock time.
  DspotOptions options;
  options.num_threads = 0;  // 0 = hardware concurrency
  auto result = FitDspot(tensor, options);
  if (!result.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("%-6s %12s %12s %10s   %s\n", "ctry", "population",
              "reaction", "RMSE", "verdict");
  for (size_t j = 0; j < tensor.num_locations(); ++j) {
    // Mean local shock strength = this country's participation in the
    // detected events (the s^(L) entries of Definition 6).
    double reaction = 0.0;
    size_t count = 0;
    for (const Shock& shock : result->params.shocks) {
      for (size_t m = 0; m < shock.local_strengths.rows(); ++m) {
        reaction += shock.local_strengths(m, j);
        ++count;
      }
    }
    reaction = count == 0 ? 0.0 : reaction / static_cast<double>(count);
    const Series data = tensor.LocalSequence(0, j);
    const Series estimate = result->LocalEstimate(0, j);
    std::printf("%-6s %12.2f %12.3f %10.3f   %s\n",
                tensor.locations()[j].c_str(),
                result->params.base_local(0, j), reaction,
                Rmse(data, estimate),
                reaction < 0.05 ? "outlier: no reaction to the event"
                                : "follows the global trend");
  }
  std::printf("\n(trailing countries were generated as low-connectivity "
              "outliers; Δ-SPOT should flag exactly those)\n");
  return 0;
}
