// dspot_cli — command-line front end for the DSPOT library.
//
// Subcommands:
//   scenarios                             list built-in synthetic scenarios
//   generate  --scenario NAME --output F  write a synthetic tensor (CSV)
//             [--ticks N] [--locations L] [--outliers K] [--seed S]
//             [--series]                  write the global sequence instead
//   fit       --series F                  fit one sequence (CSV from
//             [--forecast H]              SaveSeriesCsv / "tick,value")
//             [--forecast-output F]
//             [--threads T]               T >= 1; default: hardware conc.
//             [--time-budget-ms MS]       deadline; partial fit on expiry
//             [--skip-bad-rows]           tolerate malformed CSV rows
//             [--metrics-json F]          write an obs metrics snapshot
//             [--trace-out F]             write a Chrome trace-event file
//   fit-tensor --input F                  fit a full tensor (long-form CSV)
//             [--outliers-for KEYWORD]
//             [--threads T]               T >= 1; default: hardware conc.
//             [--time-budget-ms MS]       deadline; partial fit on expiry
//             [--skip-bad-keywords]       fit what fits, report the rest
//             [--skip-bad-rows]           tolerate malformed CSV rows
//             [--metrics-json F]          write an obs metrics snapshot
//             [--trace-out F]             write a Chrome trace-event file
//
// Flags accept both "--key value" and "--key=value". Numeric flags are
// parsed strictly: empty values, trailing garbage ("12x"), and
// out-of-range magnitudes are usage errors, never silently zero.
//
// Exit code 0 on success, 1 on any error (message on stderr). A fit cut
// short by --time-budget-ms still exits 0: the partial model is usable
// and the health line says "DeadlineExceeded".

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/parse_util.h"
#include "core/dspot.h"
#include "core/outliers.h"
#include "core/report.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "tensor/event_log.h"
#include "tensor/tensor_io.h"
#include "timeseries/metrics.h"

namespace dspot {
namespace {

/// Minimal flag parser: --key value and --key=value after the subcommand.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc;) {
      std::string key = argv[i];
      // "--key=value" carries its value in the same token.
      const size_t eq = key.find('=');
      if (key.rfind("--", 0) == 0 && eq != std::string::npos) {
        const std::string value = key.substr(eq + 1);
        key = key.substr(0, eq);
        present_.push_back(key);
        values_[key] = value;
        i += 1;
        continue;
      }
      present_.push_back(key);
      // "--key value" pairs consume two tokens; a flag followed by another
      // flag (or nothing) is boolean.
      if (key.rfind("--", 0) == 0 && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[i + 1];
        i += 2;
      } else {
        i += 1;
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  bool HasValue(const std::string& key) const {
    return values_.find(key) != values_.end();
  }

  bool Has(const std::string& key) const {
    for (const std::string& p : present_) {
      if (p == key) return true;
    }
    return false;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> present_;
};

/// Strict integer flag: absent -> fallback; present -> the whole value
/// must parse as an integer in [min_value, max_value], else a usage error
/// is printed and false returned. This replaces atol(), whose silent
/// "garbage parses as 0" turned typos like --threads=1O into requests for
/// zero threads.
bool ParseIntFlag(const Flags& flags, const char* key, long fallback,
                  long min_value, long max_value, long* out) {
  *out = fallback;
  if (!flags.Has(key)) {
    return true;
  }
  if (!flags.HasValue(key)) {
    std::fprintf(stderr, "flag %s requires an integer value\n", key);
    return false;
  }
  auto parsed = ParseInt64Text(flags.GetString(key));
  if (!parsed.ok()) {
    std::fprintf(stderr, "flag %s: %s\n", key,
                 parsed.status().message().c_str());
    return false;
  }
  if (*parsed < min_value || *parsed > max_value) {
    if (max_value == std::numeric_limits<long>::max()) {
      std::fprintf(stderr, "flag %s: %lld must be >= %ld\n", key,
                   static_cast<long long>(*parsed), min_value);
    } else {
      std::fprintf(stderr, "flag %s: %lld is out of range [%ld, %ld]\n", key,
                   static_cast<long long>(*parsed), min_value, max_value);
    }
    return false;
  }
  *out = static_cast<long>(*parsed);
  return true;
}

/// Shared handling of --metrics-json / --trace-out on the fit commands.
/// Arms the observation layer before the fit when either flag is present
/// (so the spans cover the whole pipeline), and writes the requested
/// exports afterwards.
struct ObsExportRequest {
  std::string metrics_path;
  std::string trace_path;

  static ObsExportRequest FromFlags(const Flags& flags) {
    ObsExportRequest request;
    request.metrics_path = flags.GetString("--metrics-json");
    request.trace_path = flags.GetString("--trace-out");
    if (!request.metrics_path.empty() || !request.trace_path.empty()) {
      ObsOptions options;
      options.trace = !request.trace_path.empty();
      ObsRegistry::Instance().Enable(options);
    }
    return request;
  }

  int Write() const {
    if (!metrics_path.empty()) {
      if (Status s = WriteMetricsJson(metrics_path); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
    }
    if (!trace_path.empty()) {
      if (Status s = WriteChromeTrace(trace_path); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("wrote Chrome trace to %s\n", trace_path.c_str());
    }
    return 0;
  }
};

std::map<std::string, KeywordScenario> ScenarioCatalog() {
  std::map<std::string, KeywordScenario> catalog;
  for (const KeywordScenario& sc : TrendingKeywordSuite()) {
    catalog[sc.name] = sc;
  }
  catalog[HashtagAppleScenario().name] = HashtagAppleScenario();
  catalog[HashtagBackToSchoolScenario().name] = HashtagBackToSchoolScenario();
  catalog[Meme3Scenario().name] = Meme3Scenario();
  catalog[Meme16Scenario().name] = Meme16Scenario();
  return catalog;
}

int CmdScenarios() {
  std::printf("built-in scenarios:\n");
  for (const auto& [name, sc] : ScenarioCatalog()) {
    std::printf("  %-22s %zu event(s)%s\n", name.c_str(), sc.shocks.size(),
                sc.growth_start != kNpos ? " + growth effect" : "");
  }
  return 0;
}

int CmdGenerate(const Flags& flags) {
  const std::string name = flags.GetString("--scenario");
  const std::string output = flags.GetString("--output");
  if (name.empty() || output.empty()) {
    std::fprintf(stderr,
                 "usage: dspot_cli generate --scenario NAME --output FILE "
                 "[--ticks N] [--locations L] [--outliers K] [--seed S] "
                 "[--series]\n");
    return 1;
  }
  const auto catalog = ScenarioCatalog();
  const auto it = catalog.find(name);
  if (it == catalog.end()) {
    std::fprintf(stderr, "unknown scenario '%s' (try: dspot_cli scenarios)\n",
                 name.c_str());
    return 1;
  }
  long seed = 0, ticks = 0, locations = 0, outliers = 0;
  const long kMaxLong = std::numeric_limits<long>::max();
  if (!ParseIntFlag(flags, "--seed", 42, std::numeric_limits<long>::min(),
                    kMaxLong, &seed) ||
      !ParseIntFlag(flags, "--ticks", 575, 1, kMaxLong, &ticks) ||
      !ParseIntFlag(flags, "--locations", 20, 1, kMaxLong, &locations) ||
      !ParseIntFlag(flags, "--outliers", 3, 0, kMaxLong, &outliers)) {
    return 1;
  }
  GeneratorConfig config = GoogleTrendsConfig(static_cast<uint64_t>(seed));
  config.n_ticks = static_cast<size_t>(ticks);
  config.num_locations = static_cast<size_t>(locations);
  config.num_outlier_locations = static_cast<size_t>(outliers);

  if (flags.Has("--series")) {
    auto series = GenerateGlobalSequence(it->second, config);
    if (!series.ok()) {
      std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
      return 1;
    }
    if (Status s = SaveSeriesCsv(*series, output); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu-tick series to %s\n", series->size(),
                output.c_str());
    return 0;
  }
  auto generated = GenerateTensor({it->second}, config);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  if (Status s = SaveTensorCsv(generated->tensor, output); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zux%zux%zu tensor to %s\n",
              generated->tensor.num_keywords(),
              generated->tensor.num_locations(),
              generated->tensor.num_ticks(), output.c_str());
  return 0;
}

/// Prints the pipeline FitHealth (and, when interrupted, a reminder that
/// the model is partial) after a fit.
void PrintHealth(const FitHealth& health) {
  std::printf("fit health: %s\n", health.ToString().c_str());
  if (health.interrupted()) {
    std::printf("note: the time budget ran out; this is the best partial "
                "model found in time\n");
  }
}

int CmdFit(const Flags& flags) {
  const std::string input = flags.GetString("--series");
  if (input.empty()) {
    std::fprintf(stderr,
                 "usage: dspot_cli fit --series FILE [--forecast H] "
                 "[--forecast-output FILE] [--threads T>=1] "
                 "[--time-budget-ms MS>=0] [--skip-bad-rows] "
                 "[--metrics-json FILE] [--trace-out FILE]\n");
    return 1;
  }
  const long kMaxLong = std::numeric_limits<long>::max();
  long threads = 0, time_budget_ms = 0, horizon = 0;
  // --threads must be >= 1 when given: an explicit 0 is almost always a
  // mangled value (atol("bad") was 0), and "auto" is spelled by omitting
  // the flag. Leaving it out still selects hardware concurrency.
  if (!ParseIntFlag(flags, "--threads", 0, 1, kMaxLong, &threads) ||
      !ParseIntFlag(flags, "--time-budget-ms", 0, 0, kMaxLong,
                    &time_budget_ms) ||
      !ParseIntFlag(flags, "--forecast", 0, 0, kMaxLong, &horizon)) {
    return 1;
  }
  CsvReadOptions read_options;
  read_options.skip_bad_rows = flags.Has("--skip-bad-rows");
  size_t skipped_rows = 0;
  read_options.skipped_rows = &skipped_rows;
  auto series = LoadSeriesCsv(input, read_options);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }
  if (skipped_rows > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed row(s) in %s\n",
                 skipped_rows, input.c_str());
  }
  DspotOptions options;
  // 0 = hardware concurrency; the fit is bit-identical at any setting.
  options.num_threads = static_cast<size_t>(threads);
  options.time_budget_ms = static_cast<double>(time_budget_ms);
  const ObsExportRequest obs_export = ObsExportRequest::FromFlags(flags);
  auto fit = FitDspotSingle(*series, options);
  if (!fit.ok()) {
    std::fprintf(stderr, "%s\n", fit.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", RenderReport(fit->params).c_str());
  std::printf("\nfit RMSE %.3f over %zu ticks; MDL total %.0f bits\n",
              fit->global_rmse[0], series->size(), fit->total_cost_bits);
  PrintHealth(fit->health);
  if (const int rc = obs_export.Write(); rc != 0) {
    return rc;
  }

  if (horizon > 0) {
    auto forecast =
        ForecastGlobal(fit->params, 0, static_cast<size_t>(horizon));
    if (!forecast.ok()) {
      std::fprintf(stderr, "%s\n", forecast.status().ToString().c_str());
      return 1;
    }
    const std::string out = flags.GetString("--forecast-output");
    if (!out.empty()) {
      if (Status s = SaveSeriesCsv(*forecast, out); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("wrote %ld-tick forecast to %s\n", horizon, out.c_str());
    } else {
      std::printf("\nforecast (%ld ticks):\n", horizon);
      for (size_t t = 0; t < forecast->size(); ++t) {
        std::printf("%zu,%.3f\n", series->size() + t, (*forecast)[t]);
      }
    }
  }
  return 0;
}

int CmdFitTensor(const Flags& flags) {
  const std::string input = flags.GetString("--input");
  if (input.empty()) {
    std::fprintf(stderr,
                 "usage: dspot_cli fit-tensor --input FILE "
                 "[--outliers-for KEYWORD] [--threads T>=1] "
                 "[--time-budget-ms MS>=0] [--skip-bad-keywords] "
                 "[--skip-bad-rows] [--metrics-json FILE] "
                 "[--trace-out FILE]\n");
    return 1;
  }
  const long kMaxLong = std::numeric_limits<long>::max();
  long threads = 0, time_budget_ms = 0;
  if (!ParseIntFlag(flags, "--threads", 0, 1, kMaxLong, &threads) ||
      !ParseIntFlag(flags, "--time-budget-ms", 0, 0, kMaxLong,
                    &time_budget_ms)) {
    return 1;
  }
  CsvReadOptions read_options;
  read_options.skip_bad_rows = flags.Has("--skip-bad-rows");
  size_t skipped_rows = 0;
  read_options.skipped_rows = &skipped_rows;
  auto tensor =
      LoadTensorCsv(input, /*fill_absent_with_zero=*/true, read_options);
  if (!tensor.ok()) {
    std::fprintf(stderr, "%s\n", tensor.status().ToString().c_str());
    return 1;
  }
  if (skipped_rows > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed row(s) in %s\n",
                 skipped_rows, input.c_str());
  }
  DspotOptions options;
  // 0 = hardware concurrency; the fit is bit-identical at any setting.
  options.num_threads = static_cast<size_t>(threads);
  options.time_budget_ms = static_cast<double>(time_budget_ms);
  if (flags.Has("--skip-bad-keywords")) {
    options.on_keyword_error = KeywordErrorPolicy::kSkipAndReport;
  }
  const ObsExportRequest obs_export = ObsExportRequest::FromFlags(flags);
  auto result = FitDspot(*tensor, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", RenderReport(result->params, tensor->keywords()).c_str());
  std::printf("\nper-keyword fit RMSE:\n");
  for (size_t i = 0; i < tensor->num_keywords(); ++i) {
    const bool failed = i < result->keyword_status.size() &&
                        !result->keyword_status[i].ok();
    if (failed) {
      std::printf("  %-20s SKIPPED (%s)\n", tensor->keywords()[i].c_str(),
                  result->keyword_status[i].ToString().c_str());
    } else {
      std::printf("  %-20s %.3f\n", tensor->keywords()[i].c_str(),
                  result->global_rmse[i]);
    }
  }
  PrintHealth(result->health);
  if (const int rc = obs_export.Write(); rc != 0) {
    return rc;
  }

  const std::string outlier_kw = flags.GetString("--outliers-for");
  if (!outlier_kw.empty()) {
    const size_t i = tensor->KeywordIndex(outlier_kw);
    if (i == kNpos) {
      std::fprintf(stderr, "unknown keyword '%s'\n", outlier_kw.c_str());
      return 1;
    }
    auto reactions = ScoreLocationReactions(result->params, i);
    if (!reactions.ok()) {
      std::fprintf(stderr, "%s\n", reactions.status().ToString().c_str());
      return 1;
    }
    std::printf("\nlocation reactions for '%s':\n", outlier_kw.c_str());
    for (const LocationReaction& r : *reactions) {
      std::printf("  %-8s participation %.2f zero-frac %.2f %s\n",
                  tensor->locations()[r.location].c_str(),
                  r.participation_ratio, r.zero_fraction,
                  r.is_outlier ? "OUTLIER" : "");
    }
  }
  return 0;
}

int CmdAggregate(const Flags& flags) {
  const std::string input = flags.GetString("--events");
  const std::string output = flags.GetString("--output");
  if (input.empty() || output.empty()) {
    std::fprintf(stderr,
                 "usage: dspot_cli aggregate --events FILE --output FILE "
                 "[--resolution N] [--origin T] [--skip-bad-rows]\n");
    return 1;
  }
  long resolution = 0, origin = 0;
  if (!ParseIntFlag(flags, "--resolution", 1, 1,
                    std::numeric_limits<long>::max(), &resolution) ||
      !ParseIntFlag(flags, "--origin", 0, std::numeric_limits<long>::min(),
                    std::numeric_limits<long>::max(), &origin)) {
    return 1;
  }
  AggregationConfig config;
  config.ticks_resolution = resolution;
  config.origin = origin;
  CsvReadOptions read_options;
  read_options.skip_bad_rows = flags.Has("--skip-bad-rows");
  size_t skipped_rows = 0;
  read_options.skipped_rows = &skipped_rows;
  auto tensor = LoadAndAggregateEventsCsv(input, config, read_options);
  if (!tensor.ok()) {
    std::fprintf(stderr, "%s\n", tensor.status().ToString().c_str());
    return 1;
  }
  if (skipped_rows > 0) {
    std::fprintf(stderr, "warning: skipped %zu malformed row(s) in %s\n",
                 skipped_rows, input.c_str());
  }
  if (Status s = SaveTensorCsv(*tensor, output); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("aggregated into %zux%zux%zu tensor -> %s\n",
              tensor->num_keywords(), tensor->num_locations(),
              tensor->num_ticks(), output.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: dspot_cli "
                 "<scenarios|generate|aggregate|fit|fit-tensor> [flags]\n");
    return 1;
  }
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (command == "scenarios") return CmdScenarios();
  if (command == "generate") return CmdGenerate(flags);
  if (command == "aggregate") return CmdAggregate(flags);
  if (command == "fit") return CmdFit(flags);
  if (command == "fit-tensor") return CmdFitTensor(flags);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 1;
}

}  // namespace
}  // namespace dspot

int main(int argc, char** argv) { return dspot::Main(argc, argv); }
