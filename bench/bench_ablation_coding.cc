// Ablation: Gaussian vs Poisson data-coding cost in the MDL criterion.
// The paper codes residuals with a Gaussian (Section 4.1); since activity
// volumes are counts, a Poisson code is the natural alternative — its
// variance scales with the mean, so quiet stretches are coded strictly
// and spikes leniently. This bench compares the event inventories and fit
// quality the two codes produce.

#include <cstdio>

#include "core/evaluation.h"
#include "core/global_fit.h"
#include "datagen/catalog.h"
#include "datagen/generator.h"

namespace dspot {
namespace {

int Run() {
  std::printf("=== Ablation — Gaussian vs Poisson coding in Cost_C ===\n\n");
  GeneratorConfig config = GoogleTrendsConfig();
  const KeywordScenario scenarios[] = {GrammyScenario(), EbolaScenario(),
                                       AmazonScenario()};
  std::printf("%-14s %-10s %8s %10s %12s %8s\n", "keyword", "coding",
              "#shocks", "fit RMSE", "MDL bits", "growth");
  for (const KeywordScenario& sc : scenarios) {
    auto data = GenerateGlobalSequence(sc, config);
    if (!data.ok()) {
      std::fprintf(stderr, "generate: %s\n",
                   data.status().ToString().c_str());
      return 1;
    }
    for (const auto& [label, model] :
         {std::pair<const char*, CodingModel>{"Gaussian",
                                              CodingModel::kGaussian},
          std::pair<const char*, CodingModel>{"Poisson",
                                              CodingModel::kPoisson}}) {
      GlobalFitOptions options;
      options.coding_model = model;
      auto fit = FitGlobalSequence(*data, 0, 1, options);
      if (!fit.ok()) {
        std::fprintf(stderr, "fit: %s\n", fit.status().ToString().c_str());
        continue;
      }
      std::printf("%-14s %-10s %8zu %10.3f %12.0f %8s\n", sc.name.c_str(),
                  label, fit->shocks.size(), fit->rmse, fit->cost_bits,
                  fit->params.has_growth() ? "yes" : "no");
    }
  }
  std::printf("\nExpected shape: both codes find the same event structure; "
              "the Poisson code may admit slightly different strengths on "
              "tall spikes (lenient there) while refusing noise shocks in "
              "quiet stretches.\n");
  return 0;
}

}  // namespace
}  // namespace dspot

int main() { return dspot::Run(); }
