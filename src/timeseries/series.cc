#include "timeseries/series.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace dspot {

size_t Series::observed_count() const {
  size_t count = 0;
  for (double v : values_) {
    if (!IsMissing(v)) ++count;
  }
  return count;
}

Series Series::Slice(size_t begin, size_t end) const {
  end = std::min(end, values_.size());
  if (begin >= end) {
    return Series();
  }
  return Series(std::vector<double>(values_.begin() + begin,
                                    values_.begin() + end));
}

Series Series::AddTogether(const Series& a, const Series& b) {
  assert(a.size() == b.size());
  Series out(a.size());
  for (size_t t = 0; t < a.size(); ++t) {
    if (IsMissing(a[t]) || IsMissing(b[t])) {
      out[t] = kMissingValue;
    } else {
      out[t] = a[t] + b[t];
    }
  }
  return out;
}

Series Series::Interpolated() const {
  Series out = *this;
  const size_t n = out.size();
  size_t first_obs = kNpos;
  size_t last_obs = kNpos;
  for (size_t t = 0; t < n; ++t) {
    if (out.IsObserved(t)) {
      if (first_obs == kNpos) first_obs = t;
      last_obs = t;
    }
  }
  if (first_obs == kNpos) {
    // All missing: define the result as all zeros.
    std::fill(out.values_.begin(), out.values_.end(), 0.0);
    return out;
  }
  for (size_t t = 0; t < first_obs; ++t) {
    out[t] = out[first_obs];
  }
  for (size_t t = last_obs + 1; t < n; ++t) {
    out[t] = out[last_obs];
  }
  size_t prev = first_obs;
  for (size_t t = first_obs + 1; t <= last_obs; ++t) {
    if (!out.IsObserved(t)) continue;
    if (t > prev + 1) {
      const double lo = out[prev];
      const double hi = out[t];
      const double span = static_cast<double>(t - prev);
      for (size_t k = prev + 1; k < t; ++k) {
        out[k] = lo + (hi - lo) * static_cast<double>(k - prev) / span;
      }
    }
    prev = t;
  }
  return out;
}

Series Series::RescaledToMax(double target_max) const {
  const double mx = MaxValue();
  if (IsMissing(mx) || mx <= 0.0) {
    return *this;
  }
  Series out = *this;
  const double f = target_max / mx;
  for (double& v : out.values_) {
    if (!IsMissing(v)) v *= f;
  }
  return out;
}

std::string Series::ToString(size_t max_elements) const {
  std::ostringstream os;
  os << "[";
  const size_t shown = std::min(max_elements, values_.size());
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) os << ", ";
    os << values_[i];
  }
  if (shown < values_.size()) {
    os << ", ... (" << values_.size() << " total)";
  }
  os << "]";
  return os.str();
}

}  // namespace dspot
