#ifndef DSPOT_COMMON_STATUSOR_H_
#define DSPOT_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dspot {

/// Either a value of type `T` or a non-OK `Status` explaining why the value
/// is absent. Accessing `value()` on an errored `StatusOr` aborts in debug
/// builds and is undefined otherwise, so callers must check `ok()` first.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (the common success path).
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)) {}

  /// Implicit construction from a non-OK status (the common error path).
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error from a `StatusOr` expression, otherwise binds the
/// unwrapped value to `lhs`.
#define DSPOT_ASSIGN_OR_RETURN(lhs, expr)         \
  auto DSPOT_CONCAT_(_dspot_sor_, __LINE__) = (expr); \
  if (!DSPOT_CONCAT_(_dspot_sor_, __LINE__).ok()) {   \
    return DSPOT_CONCAT_(_dspot_sor_, __LINE__).status(); \
  }                                               \
  lhs = std::move(DSPOT_CONCAT_(_dspot_sor_, __LINE__)).value()

#define DSPOT_CONCAT_INNER_(a, b) a##b
#define DSPOT_CONCAT_(a, b) DSPOT_CONCAT_INNER_(a, b)

}  // namespace dspot

#endif  // DSPOT_COMMON_STATUSOR_H_
