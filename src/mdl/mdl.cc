#include "mdl/mdl.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "kernels/reduce.h"

namespace dspot {

namespace {
/// Rissanen's constant c_omega ~= 2.865064; its log2 normalizes the
/// universal prior over the integers.
constexpr double kLog2COmega = 1.5186;
constexpr double kLog2TwoPi = 2.6514961294723187;  // log2(2*pi)
}  // namespace

double LogStar(double x) {
  double total = kLog2COmega;
  double v = x;
  while (v > 1.0) {
    v = std::log2(v);
    if (v > 0.0) {
      total += v;
    }
  }
  return total;
}

double LogChoiceCost(size_t alternatives) {
  if (alternatives <= 1) {
    return 0.0;
  }
  return std::log2(static_cast<double>(alternatives));
}

double GaussianCodingCost(const std::vector<double>& residuals,
                          double sigma_floor) {
  // Non-finite residuals (missing markers, but also +-inf blow-ups from a
  // diverged simulation) would poison mu/ss and return NaN bits, which a
  // `<` MDL comparison silently accepts; the kernels skip them like
  // missing ticks. The moment passes run SIMD (golden-tolerance policy:
  // deterministic, last-bits different from a scalar left fold).
  const kernels::MaskedMoments moments = kernels::MaskedMomentsOf(residuals);
  if (moments.count <= 1.0) {
    // Zero or one residual cannot support a variance estimate; with the
    // default floor a single residual codes at ~-18.6 bits, a negative
    // "cost" that biases model selection toward nearly-unobserved windows.
    return 0.0;
  }
  const double mu = moments.sum / moments.count;
  const double ss = kernels::MaskedSumSqDevOf(residuals, mu);
  // The 1e-300 term keeps sigma2 positive when sigma_floor == 0 and the
  // residuals are exactly constant (ss == 0), where ss / sigma2 would
  // otherwise evaluate 0/0 = NaN.
  const double sigma2 =
      std::max({ss / moments.count, Square(sigma_floor), 1e-300});
  // Sum over residuals of -log2 N(r | mu, sigma^2) =
  // 0.5*count*log2(2*pi*sigma^2) + (ss / sigma^2) / (2 ln 2). With the ML
  // sigma^2 the second term reduces to count / (2 ln 2); the general form
  // keeps the floor correct.
  const double kInvTwoLn2 = 0.7213475204444817;  // 1 / (2 ln 2)
  return 0.5 * moments.count * (kLog2TwoPi + SafeLog2(sigma2)) +
         kInvTwoLn2 * ss / sigma2;
}

double GaussianCodingCost(const Series& actual, const Series& estimate,
                          double sigma_floor) {
  return GaussianCodingCost(std::span<const double>(actual.values()),
                            std::span<const double>(estimate.values()),
                            sigma_floor);
}

double GaussianCodingCost(std::span<const double> actual,
                          std::span<const double> estimate,
                          double sigma_floor) {
  // Two kernel passes over the residual stream r_t = actual[t] -
  // estimate[t], recomputed in place. The missing/non-finite skip rule is
  // the kernels' "r_t is finite" mask (a NaN or inf operand always makes
  // r_t non-finite), and the accumulation structure is shared with the
  // residual-vector overload above, so the two overloads stay
  // bit-identical to each other.
  const kernels::MaskedMoments moments =
      kernels::MaskedResidualMoments(actual, estimate);
  if (moments.count <= 1.0) {
    // Same degenerate-support rule as the residual-vector overload above.
    return 0.0;
  }
  const double mu = moments.sum / moments.count;
  const double ss = kernels::MaskedResidualSumSqDev(actual, estimate, mu);
  const double sigma2 =
      std::max({ss / moments.count, Square(sigma_floor), 1e-300});
  const double kInvTwoLn2 = 0.7213475204444817;  // 1 / (2 ln 2)
  return 0.5 * moments.count * (kLog2TwoPi + SafeLog2(sigma2)) +
         kInvTwoLn2 * ss / sigma2;
}

double PoissonCodingCost(const Series& actual, const Series& estimate,
                         double mean_floor) {
  return PoissonCodingCost(std::span<const double>(actual.values()),
                           std::span<const double>(estimate.values()),
                           mean_floor);
}

double PoissonCodingCost(std::span<const double> actual,
                         std::span<const double> estimate, double mean_floor) {
  const size_t n = std::min(actual.size(), estimate.size());
  constexpr double kInvLn2 = 1.4426950408889634;
  double bits = 0.0;
  for (size_t t = 0; t < n; ++t) {
    if (IsMissing(actual[t]) || IsMissing(estimate[t])) continue;
    const double k = std::max(std::round(actual[t]), 0.0);
    const double mean = std::max(estimate[t], mean_floor);
    // -ln P(k | mean) = mean - k ln(mean) + ln(k!), with Stirling's
    // ln(k!) ~ k ln k - k + 0.5 ln(2 pi k) for k >= 1.
    double ln_k_factorial = 0.0;
    if (k >= 1.0) {
      ln_k_factorial = k * SafeLog(k) - k + 0.5 * SafeLog(2.0 * M_PI * k);
    }
    const double nll = mean - k * SafeLog(mean) + ln_k_factorial;
    bits += kInvLn2 * std::max(nll, 0.0);
  }
  return bits;
}

double CodingCost(const Series& actual, const Series& estimate,
                  CodingModel model) {
  return CodingCost(std::span<const double>(actual.values()),
                    std::span<const double>(estimate.values()), model);
}

double CodingCost(std::span<const double> actual,
                  std::span<const double> estimate, CodingModel model) {
  switch (model) {
    case CodingModel::kGaussian:
      return GaussianCodingCost(actual, estimate);
    case CodingModel::kPoisson:
      return PoissonCodingCost(actual, estimate);
  }
  return GaussianCodingCost(actual, estimate);
}

}  // namespace dspot
